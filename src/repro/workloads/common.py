"""Shared machinery for the scenario-fleet workloads.

The original five workloads each hand-roll the same builder spine:
``cluster_spec`` assembling a :class:`ClusterSpec` from the analysis
products, ``build_homeostasis`` / ``build_concurrent`` instantiating a
kernel from it, and the LOCAL / 2PC baseline constructors.  The
scenario fleet (flash-sale, banking, quota) shares that spine through
:class:`ReplicatedWorkloadBase` instead of triplicating it.

The module also hosts the construction-time spec validators.  A
misconfigured workload used to fail deep inside the kernel -- a zero
item count surfaces as an opaque ``ValueError`` from the treaty
generator's empty ground basis, an unknown site as a ``KeyError``
mid-negotiation.  Every workload now validates its frozen spec in
``__post_init__`` and raises :class:`WorkloadSpecError` with the
field name in the message, so bad configs die at the constructor.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Transaction
from repro.protocol.baselines import LocalCluster, TwoPhaseCommitCluster
from repro.protocol.concurrent import ConcurrentCluster
from repro.protocol.config import ClusterSpec, NegotiationSpec
from repro.protocol.homeostasis import (
    AdaptiveSettings,
    HomeostasisCluster,
    OptimizerSettings,
)
from repro.treaty.optimize import SequenceWorkloadModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.remote_writes import ReplicationSpec


class WorkloadSpecError(ValueError):
    """A workload was constructed with an invalid frozen spec.

    Subclasses ``ValueError`` so existing ``pytest.raises(ValueError)``
    call sites keep working; the message always names the offending
    field and the value it received.
    """


def require_positive(name: str, value: int | float) -> None:
    if not value > 0:
        raise WorkloadSpecError(f"{name} must be positive, got {value!r}")


def require_at_least(name: str, value: int | float, floor: int | float) -> None:
    if value < floor:
        raise WorkloadSpecError(f"{name} must be >= {floor}, got {value!r}")


def require_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise WorkloadSpecError(f"{name} must be in [0, 1], got {value!r}")


def require_sites(name: str, num_sites: int, floor: int = 1) -> None:
    """Site counts: at least ``floor`` (replication needs two)."""
    if num_sites < floor:
        raise WorkloadSpecError(
            f"{name} must be >= {floor} site(s), got {num_sites!r}"
        )


def require_nonempty(name: str, value: Sequence) -> None:
    if len(value) == 0:
        raise WorkloadSpecError(f"{name} must be non-empty")


class ReplicatedWorkloadBase:
    """Builder spine shared by the scenario-fleet workloads.

    Subclasses populate (normally in ``__post_init__``):

    - ``sites`` -- tuple of site ids;
    - ``spec`` -- the :class:`ReplicationSpec` placing bases/deltas;
    - ``variants`` -- transformed per-site transactions by name;
    - ``tx_home`` -- transaction name -> origin site;
    - ``initial_db`` -- replicated initial store (deltas included);
    - ``initial_values`` -- the un-replicated logical values (for the
      LOCAL / 2PC baselines, which replicate full state);
    - ``default_strategy`` -- the treaty strategy builders default to;

    and implement :meth:`ground_tables` plus :meth:`workload_model`
    (only needed for ``strategy="optimized"``) and
    :meth:`baseline_transactions` (untransformed variants for the
    baselines).
    """

    sites: tuple[int, ...]
    spec: "ReplicationSpec"
    variants: dict[str, Transaction]
    tx_home: dict[str, int]
    initial_db: dict[str, int]
    initial_values: dict[str, int]
    default_strategy: str = "equal-split"

    # -- analysis products ---------------------------------------------------

    def locate(self, name: str) -> int:
        return self.spec.locate(name, fallback=0)

    def runtime_tables(self) -> list[SymbolicTable]:
        return [build_symbolic_table(tx) for tx in self.variants.values()]

    def ground_tables(self) -> list[tuple[SymbolicTable, int]]:
        raise NotImplementedError

    def workload_model(self) -> SequenceWorkloadModel:
        raise NotImplementedError

    # -- cluster builders ----------------------------------------------------

    def cluster_spec(
        self,
        strategy: str | None = None,
        lookahead: int = 20,
        cost_factor: int = 3,
        seed: int = 0,
        validate: bool = False,
        adaptive: AdaptiveSettings | None = None,
        negotiation: NegotiationSpec | None = None,
    ) -> ClusterSpec:
        """The workload as a :class:`ClusterSpec` (feed
        :func:`~repro.protocol.config.build_cluster` with any kernel)."""
        if strategy is None:
            strategy = self.default_strategy
        optimizer = None
        if strategy == "optimized":
            optimizer = OptimizerSettings(
                model=self.workload_model(),
                lookahead=lookahead,
                cost_factor=cost_factor,
                rng=random.Random(seed),
            )
        return ClusterSpec(
            sites=self.sites,
            locate=self.locate,
            initial_db=self.initial_db,
            tables=tuple(self.runtime_tables()),
            tx_home=self.tx_home,
            ground_tables=tuple(self.ground_tables()),
            families=dict(self.variants),
            strategy=strategy,
            optimizer=optimizer,
            adaptive=adaptive,
            negotiation=negotiation,
            validate=validate,
        )

    def build_homeostasis(
        self,
        strategy: str | None = None,
        lookahead: int = 20,
        cost_factor: int = 3,
        seed: int = 0,
        validate: bool = False,
        adaptive: AdaptiveSettings | None = None,
        negotiation: NegotiationSpec | None = None,
        cluster_cls: type[HomeostasisCluster] = HomeostasisCluster,
    ) -> HomeostasisCluster:
        spec = self.cluster_spec(
            strategy=strategy,
            lookahead=lookahead,
            cost_factor=cost_factor,
            seed=seed,
            validate=validate,
            adaptive=adaptive,
            negotiation=negotiation,
        )
        return cluster_cls._from_spec(spec)

    def build_concurrent(self, **kwargs) -> ConcurrentCluster:
        """The same cluster under the concurrent cleanup runtime
        (windowed submissions, real vote phase)."""
        return self.build_homeostasis(cluster_cls=ConcurrentCluster, **kwargs)

    def baseline_transactions(self) -> dict[str, Transaction]:
        raise NotImplementedError

    def build_local(self) -> LocalCluster:
        return LocalCluster(
            site_ids=self.sites,
            initial_db=dict(self.initial_values),
            transactions=self.baseline_transactions(),
            tx_home=self.tx_home,
        )

    def build_2pc(self) -> TwoPhaseCommitCluster:
        return TwoPhaseCommitCluster(
            site_ids=self.sites,
            initial_db=dict(self.initial_values),
            transactions=self.baseline_transactions(),
            tx_home=self.tx_home,
        )

    def reference_transaction(self, name: str) -> Transaction:
        """The transformed transaction for serial-equivalence checks."""
        return self.variants[name]
