"""Flash-sale / ticketing: one hot SKU, a stock treaty near zero.

The paper's sweet spot is high-skew contention on a numeric
invariant, and nothing produces it like a flash sale: one SKU takes
almost all of the traffic, the non-oversell invariant ``stock >= 0``
is the treaty, and as the sale drains the stock the treaty's slack --
the quantity the protocol splits between sites -- collapses toward
zero.  Every site's split rounds down to almost nothing, violations
come on every other checkout, and the demand-driven reallocation of
PR 4 either shines (slack follows the hot site) or breaks (rebalance
rounds thrash).  Bailis et al. (VLDB'15) make the same regime the
stress case for invariant-confluent coordination avoidance.

Three transaction families over a replicated ``stock`` array:

- ``Checkout(item)`` -- the guarded decrement.  Sold out means
  ``skip``: the sale never oversells, so ``stock >= 0`` is exactly
  the H2 region the treaty maintains.
- ``Restock(item, amount)`` -- an unconditional increment (the
  merchant drip-feeds inventory to keep the sale alive).  After the
  Appendix B transform it is a pure local delta: coordination-free,
  like TPC-C's Payment.
- ``Peek(item)`` -- a read-only stock probe (the classifier-FREE
  traffic class; excluded from treaty generation exactly like the
  micro workload's ``Audit``).

``hot_fraction`` of checkouts hit SKU 0; the remainder spread
uniformly over the cold catalog.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.ground import ground_instances
from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Transaction
from repro.lang.parser import parse_transaction
from repro.protocol.remote_writes import (
    ReplicationSpec,
    initial_replicated_db,
    replicate_workload,
)
from repro.treaty.optimize import SequenceWorkloadModel
from repro.workloads.common import (
    ReplicatedWorkloadBase,
    WorkloadSpecError,
    require_fraction,
    require_positive,
    require_sites,
)

#: restock amounts the merchant drip-feeds (kept small so the treaty
#: slack never balloons away from the near-zero regime)
RESTOCK_AMOUNTS = (1, 2, 3, 4)

CHECKOUT_SRC = """
transaction Checkout(item) {
  s := read(stock(@item));
  if s > 0 then { write(stock(@item) = s - 1) } else { skip }
}
"""

RESTOCK_SRC = """
transaction Restock(item, amount) {
  s := read(stock(@item));
  write(stock(@item) = s + @amount)
}
"""

PEEK_SRC = """
transaction Peek(item) {
  s := read(stock(@item));
  print(s)
}
"""


@dataclass
class FlashSaleRequest:
    """One client request, as the simulator sees it."""

    tx_name: str
    family: str  # 'Checkout' | 'Restock' | 'Peek'
    params: dict[str, int]
    site: int
    items: tuple[int, ...]


@dataclass
class FlashSaleWorkload(ReplicatedWorkloadBase):
    """Builder for the flash-sale workload across execution modes."""

    num_skus: int = 8
    #: opening stock of the hot SKU (the sale's whole inventory)
    hot_stock: int = 40
    #: opening stock of every cold SKU
    cold_stock: int = 50
    num_sites: int = 2
    #: fraction of checkouts aimed at SKU 0
    hot_fraction: float = 0.9
    #: fraction of all requests that are merchant restocks
    restock_fraction: float = 0.05
    #: fraction of all requests that are read-only Peek probes
    peek_fraction: float = 0.0
    #: relative request weight per site (uniform by default)
    site_weights: dict[int, float] = field(default_factory=dict)
    init_seed: int = 1

    def __post_init__(self) -> None:
        require_sites("num_sites", self.num_sites, floor=2)
        require_positive("num_skus", self.num_skus)
        require_positive("hot_stock", self.hot_stock)
        if self.cold_stock < 0:
            raise WorkloadSpecError(
                f"cold_stock must be >= 0, got {self.cold_stock!r}"
            )
        require_fraction("hot_fraction", self.hot_fraction)
        require_fraction("restock_fraction", self.restock_fraction)
        require_fraction("peek_fraction", self.peek_fraction)
        if self.restock_fraction + self.peek_fraction > 1.0:
            raise WorkloadSpecError(
                "restock_fraction + peek_fraction must leave room for "
                f"checkouts, got {self.restock_fraction + self.peek_fraction!r}"
            )
        self.sites = tuple(range(self.num_sites))
        if not self.site_weights:
            self.site_weights = {s: 1.0 for s in self.sites}
        elif set(self.site_weights) != set(self.sites):
            raise WorkloadSpecError(
                f"site_weights keys {sorted(self.site_weights)} must match "
                f"sites {list(self.sites)}"
            )

        self.checkout = parse_transaction(CHECKOUT_SRC)
        self.restock = parse_transaction(RESTOCK_SRC)
        self.peek = parse_transaction(PEEK_SRC)
        families = [self.checkout, self.restock]
        if self.peek_fraction > 0.0:
            families.append(self.peek)
        self.spec = ReplicationSpec(
            bases={"stock": self.sites}, home={"stock": 0}
        )
        self.variants = replicate_workload(families, self.sites, self.spec)
        self.tx_home = {
            name: int(name.rsplit("@s", 1)[1]) for name in self.variants
        }
        self.initial_values = {
            f"stock[{i}]": self.hot_stock if i == 0 else self.cold_stock
            for i in range(self.num_skus)
        }
        self.initial_db = initial_replicated_db(
            self.initial_values, self.spec, self.sites
        )

    # -- analysis products ---------------------------------------------------

    def ground_tables(self) -> list[tuple[SymbolicTable, int]]:
        domains = {
            "item": list(range(self.num_skus)),
            "amount": list(RESTOCK_AMOUNTS),
        }
        out: list[tuple[SymbolicTable, int]] = []
        for name, tx in self.variants.items():
            if name.startswith("Peek@"):
                # Read-only probe: grounding it would only contribute
                # print pins on every stock slot -- the coordination
                # the classifier proves it does not need.
                continue
            site = self.tx_home[name]
            for gi in ground_instances(
                tx, {p: domains[p] for p in tx.params}
            ):
                out.append((build_symbolic_table(gi.transaction), site))
        return out

    def workload_model(self) -> SequenceWorkloadModel:
        def sample_params(rng: random.Random, name: str) -> dict[str, int]:
            item = self._sample_sku(rng)
            if name.startswith("Restock@"):
                return {"item": item, "amount": rng.choice(RESTOCK_AMOUNTS)}
            return {"item": item}

        mix: dict[str, float] = {}
        checkout_share = 1.0 - self.restock_fraction - self.peek_fraction
        for name in self.variants:
            weight = self.site_weights[self.tx_home[name]]
            if name.startswith("Restock@"):
                weight *= self.restock_fraction
            elif name.startswith("Peek@"):
                weight *= self.peek_fraction
            else:
                weight *= checkout_share
            mix[name] = weight
        return SequenceWorkloadModel(mix=mix, param_sampler=sample_params)

    # -- request generation --------------------------------------------------

    def _sample_sku(self, rng: random.Random) -> int:
        if self.num_skus == 1 or rng.random() < self.hot_fraction:
            return 0
        return rng.randrange(1, self.num_skus)

    def next_request(
        self, rng: random.Random, site: int | None = None
    ) -> FlashSaleRequest:
        if site is None:
            weights = [self.site_weights[s] for s in self.sites]
            site = rng.choices(self.sites, weights=weights, k=1)[0]
        draw = rng.random()
        if draw < self.restock_fraction:
            item = self._sample_sku(rng)
            amount = rng.choice(RESTOCK_AMOUNTS)
            return FlashSaleRequest(
                f"Restock@s{site}",
                "Restock",
                {"item": item, "amount": amount},
                site,
                (item,),
            )
        if draw < self.restock_fraction + self.peek_fraction:
            item = self._sample_sku(rng)
            return FlashSaleRequest(
                f"Peek@s{site}", "Peek", {"item": item}, site, (item,)
            )
        item = self._sample_sku(rng)
        return FlashSaleRequest(
            f"Checkout@s{site}", "Checkout", {"item": item}, site, (item,)
        )

    # -- baselines -----------------------------------------------------------

    def baseline_transactions(self) -> dict[str, Transaction]:
        out: dict[str, Transaction] = {}
        for s in self.sites:
            out[f"Checkout@s{s}"] = self.checkout
            out[f"Restock@s{s}"] = self.restock
            if self.peek_fraction > 0.0:
                out[f"Peek@s{s}"] = self.peek
        return out

    # -- audits --------------------------------------------------------------

    def stock_levels(self, state: dict[str, int]) -> dict[int, int]:
        """Logical per-SKU stock from a cluster's global state (base
        copy plus every site's delta)."""
        from repro.protocol.remote_writes import delta_base

        out: dict[int, int] = {}
        for i in range(self.num_skus):
            total = state.get(f"stock[{i}]", 0)
            for s in self.sites:
                total += state.get(f"{delta_base('stock', s)}[{i}]", 0)
            out[i] = total
        return out
