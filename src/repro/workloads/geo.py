"""A geo-partitioned microbenchmark: replication groups.

The Section 6.1 microbenchmark replicates one stock array across
*every* site, so any treaty violation involves the whole cluster.
Real geo-distributed catalogs are not like that: an item is stocked
in the two or three regions that sell it.  This workload models that
-- the item space is split into *groups*, each replicated across its
own subset of sites:

    groups = ((0, 1), (2, 3), (0, 4))

gives three disjoint stock arrays, one per group, with writes fanned
across only that group's sites (Appendix B transform per group).

Under the participant-scoped runtime a violation of group ``g``'s
treaty drags in exactly ``g``'s sites: the sync round is ``p*(p-1)``
messages instead of ``K*(K-1)``, and the simulator prices it from the
slowest RTT edge *inside the group* -- on the Table 1 matrix a UE<->UW
(sites 0, 1) violation costs 2 x 64 ms, not the 2 x 372 ms SG<->BR
cluster diameter.  Groups negotiate independently; the far side of
the cluster never hears about it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.ground import ground_instances
from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Transaction
from repro.lang.parser import parse_transaction
from repro.protocol.concurrent import ConcurrentCluster
from repro.protocol.config import ClusterSpec, NegotiationSpec
from repro.protocol.homeostasis import (
    AdaptiveSettings,
    HomeostasisCluster,
    OptimizerSettings,
)
from repro.protocol.remote_writes import (
    ReplicationSpec,
    initial_replicated_db,
    replicate_workload,
)
from repro.treaty.optimize import SequenceWorkloadModel
from repro.workloads.common import (
    WorkloadSpecError,
    require_nonempty,
    require_positive,
)


def group_buy_source(gid: int, base: str, refill: int) -> str:
    """Listing 1 over one group's stock array."""
    return f"""
    transaction Buy{gid}(item) {{
      q := read({base}(@item));
      if q > 1 then {{ write({base}(@item) = q - 1) }}
      else {{ write({base}(@item) = {refill} - 1) }}
    }}"""


@dataclass
class GeoRequest:
    """One client request, as the simulator sees it."""

    tx_name: str
    params: dict[str, int]
    site: int
    items: tuple[str, ...]
    group: int


@dataclass
class GeoMicroWorkload:
    """Builder for the replication-group microbenchmark."""

    groups: tuple[tuple[int, ...], ...] = ((0, 1), (2, 3))
    num_sites: int | None = None
    items_per_group: int = 12
    refill: int = 24
    #: 'refill' starts every item full; 'random' draws uniform stock
    initial_qty: str = "refill"
    init_seed: int = 1

    def __post_init__(self) -> None:
        require_nonempty("groups", self.groups)
        for gid, group in enumerate(self.groups):
            if len(group) == 0:
                raise WorkloadSpecError(
                    f"groups[{gid}] must name at least one site"
                )
            if len(set(group)) != len(group):
                raise WorkloadSpecError(
                    f"groups[{gid}] repeats a site: {group!r}"
                )
        require_positive("items_per_group", self.items_per_group)
        require_positive("refill", self.refill)
        if self.initial_qty not in ("refill", "random"):
            raise WorkloadSpecError(
                f"initial_qty must be 'refill' or 'random', got "
                f"{self.initial_qty!r}"
            )
        highest = max(s for g in self.groups for s in g)
        if self.num_sites is None:
            self.num_sites = 1 + highest
        elif self.num_sites <= highest:
            raise WorkloadSpecError(
                f"num_sites={self.num_sites!r} does not cover site "
                f"{highest} named in groups"
            )
        self.sites = tuple(range(self.num_sites))
        self.bases = tuple(f"qty{gid}" for gid in range(len(self.groups)))
        self.spec = ReplicationSpec(
            bases={base: tuple(g) for base, g in zip(self.bases, self.groups)},
            home={base: g[0] for base, g in zip(self.bases, self.groups)},
        )
        self.families: dict[int, Transaction] = {}
        self.variants: dict[str, Transaction] = {}
        self.tx_home: dict[str, int] = {}
        self.group_of_tx: dict[str, int] = {}
        for gid, (base, members) in enumerate(zip(self.bases, self.groups)):
            family = parse_transaction(group_buy_source(gid, base, self.refill))
            self.families[gid] = family
            for name, tx in replicate_workload([family], members, self.spec).items():
                self.variants[name] = tx
                self.tx_home[name] = int(name.rsplit("@s", 1)[1])
                self.group_of_tx[name] = gid

        init_rng = random.Random(self.init_seed)
        self.initial_values: dict[str, int] = {}
        for base in self.bases:
            for i in range(self.items_per_group):
                if self.initial_qty == "random":
                    value = init_rng.randint(2, self.refill)
                else:
                    value = self.refill
                self.initial_values[f"{base}[{i}]"] = value
        self.initial_db = initial_replicated_db(
            self.initial_values, self.spec, self.sites
        )
        #: groups a site originates requests for
        self.groups_of_site = {
            s: tuple(g for g, members in enumerate(self.groups) if s in members)
            for s in self.sites
        }

    # -- analysis products ----------------------------------------------------

    def locate(self, name: str) -> int:
        return self.spec.locate(name, fallback=0)

    def runtime_tables(self) -> list[SymbolicTable]:
        return [build_symbolic_table(tx) for tx in self.variants.values()]

    def ground_tables(self) -> list[tuple[SymbolicTable, int]]:
        domains = {"item": list(range(self.items_per_group))}
        out: list[tuple[SymbolicTable, int]] = []
        for name, tx in self.variants.items():
            site = self.tx_home[name]
            for gi in ground_instances(tx, domains):
                out.append((build_symbolic_table(gi.transaction), site))
        return out

    # -- cluster builder ------------------------------------------------------

    def workload_model(self) -> SequenceWorkloadModel:
        def sample_params(rng: random.Random, name: str) -> dict[str, int]:
            return {"item": rng.randrange(self.items_per_group)}

        return SequenceWorkloadModel(
            mix={name: 1.0 for name in self.variants},
            param_sampler=sample_params,
        )

    def cluster_spec(
        self,
        strategy: str = "equal-split",
        lookahead: int = 20,
        cost_factor: int = 3,
        seed: int = 0,
        validate: bool = False,
        adaptive: AdaptiveSettings | None = None,
        negotiation: NegotiationSpec | None = None,
    ) -> ClusterSpec:
        """The workload as a :class:`ClusterSpec` (feed
        :func:`~repro.protocol.config.build_cluster` with any kernel)."""
        optimizer = None
        if strategy == "optimized":
            optimizer = OptimizerSettings(
                model=self.workload_model(),
                lookahead=lookahead,
                cost_factor=cost_factor,
                rng=random.Random(seed),
            )
        return ClusterSpec(
            sites=self.sites,
            locate=self.locate,
            initial_db=self.initial_db,
            tables=tuple(self.runtime_tables()),
            tx_home=self.tx_home,
            ground_tables=tuple(self.ground_tables()),
            families=dict(self.variants),
            strategy=strategy,
            optimizer=optimizer,
            adaptive=adaptive,
            negotiation=negotiation,
            validate=validate,
        )

    def build_homeostasis(
        self,
        strategy: str = "equal-split",
        lookahead: int = 20,
        cost_factor: int = 3,
        seed: int = 0,
        validate: bool = False,
        adaptive: AdaptiveSettings | None = None,
        negotiation: NegotiationSpec | None = None,
        cluster_cls: type[HomeostasisCluster] = HomeostasisCluster,
    ) -> HomeostasisCluster:
        spec = self.cluster_spec(
            strategy=strategy,
            lookahead=lookahead,
            cost_factor=cost_factor,
            seed=seed,
            validate=validate,
            adaptive=adaptive,
            negotiation=negotiation,
        )
        return cluster_cls._from_spec(spec)

    def build_concurrent(self, **kwargs) -> ConcurrentCluster:
        """The same cluster under the concurrent cleanup runtime:
        disjoint replication groups violate in the same window and
        negotiate in parallel waves."""
        return self.build_homeostasis(cluster_cls=ConcurrentCluster, **kwargs)

    # -- request generation ---------------------------------------------------

    def next_request(self, rng: random.Random, site: int | None = None) -> GeoRequest:
        """Draw one request.

        A site that belongs to replication groups buys from one of its
        own groups; an idle site (in the deployment but in no group)
        is assigned a group round-robin so simulator clients on every
        replica stay busy.
        """
        if site is None:
            site = rng.randrange(len(self.sites))
        candidates = self.groups_of_site[site]
        if candidates:
            gid = rng.choice(candidates)
            origin = site
        else:
            gid = site % len(self.groups)
            members = self.groups[gid]
            origin = members[site % len(members)]
        item = rng.randrange(self.items_per_group)
        return GeoRequest(
            tx_name=f"Buy{gid}@s{origin}",
            params={"item": item},
            site=origin,
            items=(f"{self.bases[gid]}[{item}]",),
            group=gid,
        )

    def reference_transaction(self, name: str) -> Transaction:
        """The transformed transaction for serial-equivalence checks."""
        return self.variants[name]
