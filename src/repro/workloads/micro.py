"""The Section 6.1 microbenchmark.

Listing 1 of the paper, over a replicated ``Stock(itemid INT, qty
INT)`` table:

    SELECT qty FROM stock WHERE itemid=@itemid;
    if (qty > 1) then new_qty = qty - 1 else new_qty = REFILL - 1
    UPDATE stock SET qty=new_qty WHERE itemid=@itemid;

In L++ the quantity column is the parameterized array ``qty`` and the
transaction is ``Buy(item)``.  The workload is replicated across
``Nr`` sites via the Appendix B transform, after which the decrement
path writes only the local delta (never synchronizes until its treaty
budget is exhausted) and the refill path performs remote reads (its
matched row pins state, forcing synchronization -- as the demarcation
comparison in Section 6.1 expects).

``MultiBuy`` is the Appendix F.1 variant ordering ``m`` distinct
items per transaction (Figure 27).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.ground import ground_instances
from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Transaction
from repro.lang.parser import parse_transaction
from repro.protocol.baselines import LocalCluster, TwoPhaseCommitCluster
from repro.protocol.concurrent import ConcurrentCluster
from repro.protocol.config import ClusterSpec, NegotiationSpec
from repro.protocol.homeostasis import (
    AdaptiveSettings,
    HomeostasisCluster,
    OptimizerSettings,
)
from repro.protocol.remote_writes import (
    ReplicationSpec,
    initial_replicated_db,
    replicate_workload,
)
from repro.treaty.optimize import SequenceWorkloadModel
from repro.workloads.common import (
    WorkloadSpecError,
    require_fraction,
    require_positive,
    require_sites,
)


def buy_source(refill: int) -> str:
    """L++ source of the Listing 1 transaction."""
    return f"""
    transaction Buy(item) {{
      q := read(qty(@item));
      if q > 1 then {{ write(qty(@item) = q - 1) }}
      else {{ write(qty(@item) = {refill} - 1) }}
    }}"""


def audit_source() -> str:
    """L++ source of a read-only stock probe.

    Reads one item's (replicated) quantity and reports it: the
    coordination-freedom classifier proves every path of it FREE, so
    it rides the mixed-OLTP micro scenario as the class of traffic
    that should never pay a treaty check."""
    return """
    transaction Audit(item) {
      q := read(qty(@item));
      print(q)
    }"""


def multibuy_source(refill: int, m: int) -> str:
    """L++ source of the m-item variant (Appendix F.1 / Figure 27)."""
    params = ", ".join(f"item{k}" for k in range(m))
    body = "\n".join(
        f"""
      q{k} := read(qty(@item{k}));
      if q{k} > 1 then {{ write(qty(@item{k}) = q{k} - 1) }}
      else {{ write(qty(@item{k}) = {refill} - 1) }}"""
        for k in range(m)
    )
    distinct = f" distinct({params})" if m > 1 else ""
    return f"transaction MultiBuy({params}){distinct} {{{body}\n}}"


@dataclass
class MicroRequest:
    """One client request, as the simulator sees it."""

    tx_name: str
    params: dict[str, int]
    site: int
    items: tuple[int, ...]


@dataclass
class MicroWorkload:
    """Builder for the microbenchmark across execution modes."""

    num_items: int = 100
    refill: int = 100
    num_sites: int = 2
    items_per_txn: int = 1
    #: relative request weight per site (uniform by default)
    site_weights: dict[int, float] = field(default_factory=dict)
    #: 'refill' starts every item full; 'random' draws uniform stock
    #: levels so measurements start at steady state
    initial_qty: str = "refill"
    init_seed: int = 1
    #: fraction of requests that are read-only ``Audit`` probes (the
    #: classifier-FREE traffic class); 0 keeps the pure Listing 1 mix
    #: and registers no Audit procedures at all
    audit_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_sites("num_sites", self.num_sites, floor=2)
        require_positive("num_items", self.num_items)
        require_positive("refill", self.refill)
        require_positive("items_per_txn", self.items_per_txn)
        require_fraction("audit_fraction", self.audit_fraction)
        if self.items_per_txn > self.num_items:
            raise WorkloadSpecError(
                f"items_per_txn={self.items_per_txn!r} cannot exceed "
                f"num_items={self.num_items!r} (MultiBuy orders distinct items)"
            )
        if self.initial_qty not in ("refill", "random"):
            raise WorkloadSpecError(
                f"initial_qty must be 'refill' or 'random', got "
                f"{self.initial_qty!r}"
            )
        self.sites = tuple(range(self.num_sites))
        if not self.site_weights:
            self.site_weights = {s: 1.0 for s in self.sites}
        elif set(self.site_weights) != set(self.sites):
            raise WorkloadSpecError(
                f"site_weights keys {sorted(self.site_weights)} must match "
                f"sites {list(self.sites)}"
            )
        if self.items_per_txn == 1:
            self.family = parse_transaction(buy_source(self.refill))
        else:
            self.family = parse_transaction(
                multibuy_source(self.refill, self.items_per_txn)
            )
        self.audit_family: Transaction | None = None
        families = [self.family]
        if self.audit_fraction > 0.0:
            self.audit_family = parse_transaction(audit_source())
            families.append(self.audit_family)
        self.spec = ReplicationSpec(bases={"qty": self.sites}, home={"qty": 0})
        self.variants = replicate_workload(families, self.sites, self.spec)
        self.tx_home = {
            name: int(name.rsplit("@s", 1)[1]) for name in self.variants
        }
        if self.initial_qty == "random":
            init_rng = random.Random(self.init_seed)
            self.initial_values = {
                f"qty[{i}]": init_rng.randint(2, self.refill)
                for i in range(self.num_items)
            }
        else:
            self.initial_values = {
                f"qty[{i}]": self.refill for i in range(self.num_items)
            }
        self.initial_db = initial_replicated_db(
            self.initial_values, self.spec, self.sites
        )

    # -- analysis products ----------------------------------------------------

    def locate(self, name: str) -> int:
        return self.spec.locate(name, fallback=0)

    def runtime_tables(self) -> list[SymbolicTable]:
        return [build_symbolic_table(tx) for tx in self.variants.values()]

    def ground_tables(self) -> list[tuple[SymbolicTable, int]]:
        """Per-instance symbolic tables with home sites, for treaty
        generation.

        For the multi-item variant the ground basis is the *per-item
        projection*: a ``MultiBuy(i1..im)`` instance with distinct
        items touches each item exactly like a single-item ``Buy``
        does, and its joint guard is the conjunction of the per-item
        guards, so grounding the single-item family over the item
        domain yields the identical treaty at cost ``O(items)``
        instead of ``O(items^m)``.
        """
        basis_family = (
            self.family
            if self.items_per_txn == 1
            else parse_transaction(buy_source(self.refill))
        )
        basis_variants = (
            self.variants
            if self.items_per_txn == 1
            else replicate_workload([basis_family], self.sites, self.spec)
        )
        domains = {"item": list(range(self.num_items))}
        out: list[tuple[SymbolicTable, int]] = []
        for name, tx in basis_variants.items():
            if name.startswith("Audit@"):
                # Read-only probe: its single true-guard row would only
                # contribute Appendix C.3 print pins on every quantity
                # -- exactly the coordination the classifier proves it
                # does not need.
                continue
            site = int(name.rsplit("@s", 1)[1])
            for gi in ground_instances(tx, domains):
                out.append((build_symbolic_table(gi.transaction), site))
        return out

    # -- cluster builders ---------------------------------------------------------

    def workload_model(self) -> SequenceWorkloadModel:
        def sample_params(rng: random.Random, name: str) -> dict[str, int]:
            if self.items_per_txn == 1 or name.startswith("Audit@"):
                return {"item": rng.randrange(self.num_items)}
            items = rng.sample(range(self.num_items), self.items_per_txn)
            return {f"item{k}": it for k, it in enumerate(items)}

        mix: dict[str, float] = {}
        for name in self.variants:
            weight = self.site_weights[self.tx_home[name]]
            if self.audit_family is not None:
                share = (
                    self.audit_fraction
                    if name.startswith("Audit@")
                    else 1.0 - self.audit_fraction
                )
                weight *= share
            mix[name] = weight
        return SequenceWorkloadModel(mix=mix, param_sampler=sample_params)

    def cluster_spec(
        self,
        strategy: str = "optimized",
        lookahead: int = 20,
        cost_factor: int = 3,
        seed: int = 0,
        validate: bool = False,
        adaptive: AdaptiveSettings | None = None,
        negotiation: NegotiationSpec | None = None,
    ) -> ClusterSpec:
        """The workload as a :class:`ClusterSpec` (feed
        :func:`~repro.protocol.config.build_cluster` with any kernel)."""
        optimizer = None
        if strategy == "optimized":
            optimizer = OptimizerSettings(
                model=self.workload_model(),
                lookahead=lookahead,
                cost_factor=cost_factor,
                rng=random.Random(seed),
            )
        return ClusterSpec(
            sites=self.sites,
            locate=self.locate,
            initial_db=self.initial_db,
            tables=tuple(self.runtime_tables()),
            tx_home=self.tx_home,
            ground_tables=tuple(self.ground_tables()),
            families=dict(self.variants),
            strategy=strategy,
            optimizer=optimizer,
            adaptive=adaptive,
            negotiation=negotiation,
            validate=validate,
        )

    def build_homeostasis(
        self,
        strategy: str = "optimized",
        lookahead: int = 20,
        cost_factor: int = 3,
        seed: int = 0,
        validate: bool = False,
        adaptive: AdaptiveSettings | None = None,
        negotiation: NegotiationSpec | None = None,
        cluster_cls: type[HomeostasisCluster] = HomeostasisCluster,
    ) -> HomeostasisCluster:
        spec = self.cluster_spec(
            strategy=strategy,
            lookahead=lookahead,
            cost_factor=cost_factor,
            seed=seed,
            validate=validate,
            adaptive=adaptive,
            negotiation=negotiation,
        )
        return cluster_cls._from_spec(spec)

    def build_concurrent(self, **kwargs) -> ConcurrentCluster:
        """The same cluster under the concurrent cleanup runtime
        (windowed submissions, real vote phase)."""
        return self.build_homeostasis(cluster_cls=ConcurrentCluster, **kwargs)

    def _baseline_transactions(self) -> dict[str, Transaction]:
        family_name = "Buy" if self.items_per_txn == 1 else "MultiBuy"
        out = {f"{family_name}@s{s}": self.family for s in self.sites}
        if self.audit_family is not None:
            out.update({f"Audit@s{s}": self.audit_family for s in self.sites})
        return out

    def build_local(self) -> LocalCluster:
        return LocalCluster(
            site_ids=self.sites,
            initial_db=dict(self.initial_values),
            transactions=self._baseline_transactions(),
            tx_home=self.tx_home,
        )

    def build_2pc(self) -> TwoPhaseCommitCluster:
        return TwoPhaseCommitCluster(
            site_ids=self.sites,
            initial_db=dict(self.initial_values),
            transactions=self._baseline_transactions(),
            tx_home=self.tx_home,
        )

    # -- request generation -----------------------------------------------------------

    def next_request(self, rng: random.Random, site: int | None = None) -> MicroRequest:
        if site is None:
            weights = [self.site_weights[s] for s in self.sites]
            site = rng.choices(self.sites, weights=weights, k=1)[0]
        if self.audit_family is not None and rng.random() < self.audit_fraction:
            item = rng.randrange(self.num_items)
            return MicroRequest(f"Audit@s{site}", {"item": item}, site, (item,))
        if self.items_per_txn == 1:
            item = rng.randrange(self.num_items)
            name = f"Buy@s{site}"
            return MicroRequest(name, {"item": item}, site, (item,))
        items = tuple(rng.sample(range(self.num_items), self.items_per_txn))
        name = f"MultiBuy@s{site}"
        params = {f"item{k}": it for k, it in enumerate(items)}
        return MicroRequest(name, params, site, items)

    def reference_transaction(self, name: str) -> Transaction:
        """The transformed transaction for serial-equivalence checks."""
        return self.variants[name]
