"""Multi-tenant API rate limiter: many small independent treaties.

Where the flash sale concentrates all contention on one slot, the
quota workload shatters it: every tenant owns a private ``used``
counter with a private invariant ``used <= limit``, so the treaty
table holds one small treaty per tenant and the compiled-check cache
one guard clause per tenant.  Scaling the tenant count is therefore a
direct stress test of the treaty *table* and the compiled-check
*cache* -- the per-commit metadata path -- rather than of headroom
arithmetic on a single hot counter.

One family does the work, in the same two-path shape as the micro
workload's Listing-1 ``Buy``:

- ``Hit(tenant)`` -- under the limit, count the request (a guarded
  increment riding treaty headroom, coordination-free until the
  tenant's split is spent); at the limit, roll the window over by
  resetting the counter to zero (an absolute write whose matched row
  pins state and synchronizes -- the demarcation comparison's sync
  class).
- ``Usage(tenant)`` -- a read-only usage probe (classifier-FREE,
  excluded from treaty generation like the other fleet probes).

``overruns`` is the correctness audit: no interleaving may push any
tenant's logical counter past its limit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.ground import ground_instances
from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Transaction
from repro.lang.parser import parse_transaction
from repro.protocol.remote_writes import (
    ReplicationSpec,
    delta_base,
    initial_replicated_db,
    replicate_workload,
)
from repro.treaty.optimize import SequenceWorkloadModel
from repro.workloads.common import (
    ReplicatedWorkloadBase,
    WorkloadSpecError,
    require_fraction,
    require_positive,
    require_sites,
)


def hit_source(limit: int) -> str:
    """L++ source of the rate-limit transaction for a window ``limit``."""
    return f"""
    transaction Hit(tenant) {{
      u := read(used(@tenant));
      if u < {limit} then {{ write(used(@tenant) = u + 1) }}
      else {{ write(used(@tenant) = 0) }}
    }}"""


USAGE_SRC = """
transaction Usage(tenant) {
  u := read(used(@tenant));
  print(u)
}
"""


@dataclass
class QuotaRequest:
    """One client request, as the simulator sees it."""

    tx_name: str
    family: str  # 'Hit' | 'Usage'
    params: dict[str, int]
    site: int
    tenant: int


@dataclass
class QuotaWorkload(ReplicatedWorkloadBase):
    """Builder for the rate-limiter workload across execution modes."""

    num_tenants: int = 12
    num_sites: int = 2
    #: per-window request budget of every tenant
    limit: int = 10
    #: fraction of all requests that are read-only usage probes
    usage_fraction: float = 0.0
    #: Zipf-ish skew: fraction of hits aimed at tenant 0
    hot_fraction: float = 0.0
    site_weights: dict[int, float] = field(default_factory=dict)
    init_seed: int = 1

    def __post_init__(self) -> None:
        require_sites("num_sites", self.num_sites, floor=2)
        require_positive("num_tenants", self.num_tenants)
        require_positive("limit", self.limit)
        require_fraction("usage_fraction", self.usage_fraction)
        require_fraction("hot_fraction", self.hot_fraction)
        if self.usage_fraction >= 1.0:
            raise WorkloadSpecError(
                "usage_fraction must leave room for Hit traffic, "
                f"got {self.usage_fraction!r}"
            )
        self.sites = tuple(range(self.num_sites))
        if not self.site_weights:
            self.site_weights = {s: 1.0 for s in self.sites}
        elif set(self.site_weights) != set(self.sites):
            raise WorkloadSpecError(
                f"site_weights keys {sorted(self.site_weights)} must match "
                f"sites {list(self.sites)}"
            )

        self.hit = parse_transaction(hit_source(self.limit))
        self.usage = parse_transaction(USAGE_SRC)
        families = [self.hit]
        if self.usage_fraction > 0.0:
            families.append(self.usage)
        self.spec = ReplicationSpec(
            bases={"used": self.sites}, home={"used": 0}
        )
        self.variants = replicate_workload(families, self.sites, self.spec)
        self.tx_home = {
            name: int(name.rsplit("@s", 1)[1]) for name in self.variants
        }
        self.initial_values = {
            f"used[{t}]": 0 for t in range(self.num_tenants)
        }
        self.initial_db = initial_replicated_db(
            self.initial_values, self.spec, self.sites
        )

    # -- analysis products ---------------------------------------------------

    def ground_tables(self) -> list[tuple[SymbolicTable, int]]:
        domains = {"tenant": list(range(self.num_tenants))}
        out: list[tuple[SymbolicTable, int]] = []
        for name, tx in self.variants.items():
            if name.startswith("Usage@"):
                # Read-only probe: excluded from treaty generation so
                # its print pins never force coordination the
                # classifier proves unnecessary.
                continue
            site = self.tx_home[name]
            for gi in ground_instances(
                tx, {p: domains[p] for p in tx.params}
            ):
                out.append((build_symbolic_table(gi.transaction), site))
        return out

    def workload_model(self) -> SequenceWorkloadModel:
        def sample_params(rng: random.Random, name: str) -> dict[str, int]:
            return {"tenant": self._sample_tenant(rng)}

        mix: dict[str, float] = {}
        hit_share = 1.0 - self.usage_fraction
        for name in self.variants:
            weight = self.site_weights[self.tx_home[name]]
            if name.startswith("Usage@"):
                weight *= self.usage_fraction
            else:
                weight *= hit_share
            mix[name] = weight
        return SequenceWorkloadModel(mix=mix, param_sampler=sample_params)

    # -- request generation --------------------------------------------------

    def _sample_tenant(self, rng: random.Random) -> int:
        if self.num_tenants == 1:
            return 0
        if self.hot_fraction > 0.0 and rng.random() < self.hot_fraction:
            return 0
        return rng.randrange(self.num_tenants)

    def next_request(
        self, rng: random.Random, site: int | None = None
    ) -> QuotaRequest:
        if site is None:
            weights = [self.site_weights[s] for s in self.sites]
            site = rng.choices(self.sites, weights=weights, k=1)[0]
        tenant = self._sample_tenant(rng)
        if rng.random() < self.usage_fraction:
            return QuotaRequest(
                f"Usage@s{site}", "Usage", {"tenant": tenant}, site, tenant
            )
        return QuotaRequest(
            f"Hit@s{site}", "Hit", {"tenant": tenant}, site, tenant
        )

    # -- baselines -----------------------------------------------------------

    def baseline_transactions(self) -> dict[str, Transaction]:
        out: dict[str, Transaction] = {}
        for s in self.sites:
            out[f"Hit@s{s}"] = self.hit
            if self.usage_fraction > 0.0:
                out[f"Usage@s{s}"] = self.usage
        return out

    # -- audits --------------------------------------------------------------

    def usage_levels(self, state: dict[str, int]) -> dict[int, int]:
        """Logical per-tenant counter from a cluster's global state
        (base copy plus every site's delta)."""
        out: dict[int, int] = {}
        for t in range(self.num_tenants):
            total = state.get(f"used[{t}]", 0)
            for s in self.sites:
                total += state.get(f"{delta_base('used', s)}[{t}]", 0)
            out[t] = total
        return out

    def overruns(self, state: dict[str, int]) -> list[str]:
        """The rate-limit audit: no tenant counter may escape
        ``0 <= used <= limit`` under any interleaving."""
        problems: list[str] = []
        for tenant, used in self.usage_levels(state).items():
            if not 0 <= used <= self.limit:
                problems.append(
                    f"used[{tenant}] = {used} outside [0, {self.limit}]"
                )
        return problems
