"""The introduction's distributed top-k example (Figures 1 and 2).

The aggregator site maintains a top-k list sorted by value; item
sites receive inserts.  The paper's point: analyzing the aggregator's
insert-handling code shows that it *does nothing* whenever the new
value is at most the current k-th value, so item sites holding a
cached copy of that minimum can skip communication for such inserts
-- recovering the threshold-algorithm optimization automatically.

This module expresses the aggregator code in L (for ``k = 2``),
computes its symbolic table, extracts the skip-guard, and runs both
algorithms of Figures 1 and 2 side by side, counting messages.  The
treaty is exactly the paper's example: "the current minimal value in
the top-k is m" -- violated precisely when an insert exceeds m.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Skip, Transaction
from repro.lang.interp import evaluate
from repro.lang.parser import parse_transaction

AGG_INSERT_SRC = """
transaction AggInsert(v) {
  t1 := read(top1);
  t2 := read(top2);
  if @v > t2 then {
    if @v > t1 then { write(top1 = @v); write(top2 = t1) }
    else { write(top2 = @v) }
  } else { skip }
}
"""


def aggregator_transaction() -> Transaction:
    """The aggregator's insert handler for k = 2."""
    return parse_transaction(AGG_INSERT_SRC)


def aggregator_table() -> SymbolicTable:
    """Its symbolic table: three rows (skip / new 2nd / new 1st)."""
    return build_symbolic_table(aggregator_transaction())


def skip_guard_threshold(table: SymbolicTable) -> str:
    """The guard of the do-nothing row, i.e. the derived treaty shape.

    Exactly one row's residual is empty (``skip``); the analysis found
    the region of databases where inserts are unobservable.
    """
    for row in table.rows:
        if isinstance(row.residual, Skip):
            return row.guard.pretty()
    raise AssertionError("aggregator table must contain a skip row")


@dataclass
class TopKRun:
    """Outcome of replaying an insert stream under one algorithm."""

    top: tuple[int, int]
    messages: int
    inserts: int

    @property
    def message_ratio(self) -> float:
        return self.messages / self.inserts if self.inserts else 0.0


@dataclass
class TopKSystem:
    """The Figure 1/2 system: item sites plus one aggregator."""

    num_item_sites: int = 3
    table: SymbolicTable = field(default_factory=aggregator_table)

    def run_basic(self, stream: Iterable[tuple[int, int]]) -> TopKRun:
        """Figure 1: every insert is sent to the aggregator."""
        state = {"top1": 0, "top2": 0}
        messages = 0
        inserts = 0
        for _site, value in stream:
            inserts += 1
            messages += 1  # item site -> aggregator
            state = self._apply(state, value)
        return TopKRun((state["top1"], state["top2"]), messages, inserts)

    def run_improved(self, stream: Iterable[tuple[int, int]]) -> TopKRun:
        """Figure 2: sites filter against a cached minimum.

        The filter predicate is taken from the symbolic table's skip
        row (v <= top2): only violating inserts are forwarded, and a
        forward triggers a broadcast of the new minimum to all sites
        (the treaty renegotiation).
        """
        state = {"top1": 0, "top2": 0}
        cached_min = {s: state["top2"] for s in range(self.num_item_sites)}
        messages = 0
        inserts = 0
        for site, value in stream:
            inserts += 1
            if value <= cached_min[site]:
                continue  # treaty holds; no communication
            messages += 1  # forward the violating insert
            state = self._apply(state, value)
            messages += self.num_item_sites  # broadcast the new treaty
            for s in cached_min:
                cached_min[s] = state["top2"]
        return TopKRun((state["top1"], state["top2"]), messages, inserts)

    def _apply(self, state: dict[str, int], value: int) -> dict[str, int]:
        """Run the aggregator transaction through the L interpreter."""
        result = evaluate(self.table.transaction, state, params={"v": value})
        return result.db


@dataclass
class TopKWorkload:
    """Random insert streams for the top-k system."""

    num_item_sites: int = 3
    value_range: tuple[int, int] = (1, 1000)

    def stream(self, n: int, seed: int = 0) -> list[tuple[int, int]]:
        rng = random.Random(seed)
        lo, hi = self.value_range
        return [
            (rng.randrange(self.num_item_sites), rng.randint(lo, hi))
            for _ in range(n)
        ]

    def compare(self, n: int = 1000, seed: int = 0) -> tuple[TopKRun, TopKRun]:
        """Run both algorithms on the same stream; results must agree."""
        system = TopKSystem(num_item_sites=self.num_item_sites)
        stream = self.stream(n, seed)
        basic = system.run_basic(stream)
        improved = system.run_improved(stream)
        if basic.top != improved.top:
            raise AssertionError(
                f"algorithms diverged: {basic.top} vs {improved.top}"
            )
        return basic, improved
