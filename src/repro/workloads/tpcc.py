"""The Section 6.2 TPC-C subset: New Order, Payment, Delivery.

Appendix E describes the L++ encoding and the treaties the protocol
produces; this module reproduces both.  Integer-only columns (only
fields the three transactions read or write in ways that affect
control flow or observable output are materialized):

- ``stock_qty[w, i]``            -- replicated, written by New Order
- ``warehouse_ytd[w]``           -- replicated, increment-only (Payment)
- ``district_ytd[w, d]``         -- replicated, increment-only (Payment)
- ``customer_balance[c]``        -- replicated, increment-only (Payment)
- ``unfulfilled[w, d]``          -- replicated, +1 by New Order, -1 by
  Delivery (the paper's "number of unfulfilled orders" treaty object)
- ``delivered[w, d]``            -- replicated, +1 by Delivery; its value
  is printed, which is what pins it and forces Delivery to synchronize
  (the paper's "current lowest order id" treaty, in count form: with
  per-site id generation the k-th delivery always fulfils the k-th
  oldest order, so the delivered-count determines the order id)
- ``next_oid_s{K}[w, d]``        -- per-site order-id counters, local to
  site K by construction (the paper's "each site generates
  monotonically increasing order ids and no two sites can ever
  generate the same order id"); they never need treaties.

Expected protocol behaviour, derived automatically by the analysis
(matching Appendix E):

- Payment never synchronizes (after the Appendix B transform its
  writes are pure delta increments with no branching);
- New Order synchronizes only when a stock treaty budget is exhausted
  (global treaty: stock stays in its current symbolic region, i.e.
  ``stock_qty >= qty + 10`` for the in-stock region);
- Delivery synchronizes every time (its printed output depends on
  remote state, so the treaty pins the objects it reads).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.ground import ground_instances
from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Transaction
from repro.lang.parser import parse_transaction
from repro.logic.formula import BoolConst
from repro.protocol.baselines import LocalCluster, TwoPhaseCommitCluster
from repro.protocol.config import ClusterSpec
from repro.protocol.homeostasis import (
    AdaptiveSettings,
    HomeostasisCluster,
    OptimizerSettings,
)
from repro.protocol.remote_writes import (
    ReplicationSpec,
    initial_replicated_db,
    transform_for_site,
)
from repro.treaty.optimize import SequenceWorkloadModel
from repro.workloads.common import (
    WorkloadSpecError,
    require_positive,
    require_sites,
)

#: TPC-C order quantity range (uniform 1..5 per Section 6.2).
QTY_RANGE = (1, 2, 3, 4, 5)

NEW_ORDER_SRC = """
transaction NewOrder(w, d, item, qty) {
  s := read(stock_qty(@w, @item));
  if s >= @qty + 10 then { write(stock_qty(@w, @item) = s - @qty) }
  else { write(stock_qty(@w, @item) = s - @qty + 91) }
  o := read(NEXT_OID(@w, @d));
  write(NEXT_OID(@w, @d) = o + 1);
  u := read(unfulfilled(@w, @d));
  write(unfulfilled(@w, @d) = u + 1);
}
"""

PAYMENT_SRC = """
transaction Payment(w, d, c, amount) {
  wy := read(warehouse_ytd(@w));
  write(warehouse_ytd(@w) = wy + @amount);
  dy := read(district_ytd(@w, @d));
  write(district_ytd(@w, @d) = dy + @amount);
  b := read(customer_balance(@c));
  write(customer_balance(@c) = b - @amount);
}
"""

DELIVERY_SRC = """
transaction Delivery(w, d) {
  u := read(unfulfilled(@w, @d));
  if u > 0 then {
    dv := read(delivered(@w, @d));
    write(delivered(@w, @d) = dv + 1);
    write(unfulfilled(@w, @d) = u - 1);
    print(dv)
  } else { skip }
}
"""


@dataclass
class TpccRequest:
    """One client request as the simulator sees it."""

    tx_name: str
    family: str  # 'NewOrder' | 'Payment' | 'Delivery'
    params: dict[str, int]
    site: int
    #: objects relevant for contention modelling (warehouse, item)
    hot_key: tuple[int, ...]


@dataclass
class TpccWorkload:
    """Builder for the TPC-C subset across execution modes.

    ``hotness`` is H from Section 6.2: the percentage of New Order
    transactions that order one of the 1% "hot" items.  The
    transaction mix defaults to 45/45/10 (New Order / Payment /
    Delivery); the distributed-deployment experiments use 49/49/2.
    """

    num_warehouses: int = 2
    num_districts: int = 2
    items_per_district: int = 50
    num_customers: int = 100
    num_sites: int = 2
    hotness: int = 10
    initial_stock: int = 100
    mix: tuple[float, float, float] = (0.45, 0.45, 0.10)

    def __post_init__(self) -> None:
        require_sites("num_sites", self.num_sites, floor=2)
        require_positive("num_warehouses", self.num_warehouses)
        require_positive("num_districts", self.num_districts)
        require_positive("items_per_district", self.items_per_district)
        require_positive("num_customers", self.num_customers)
        require_positive("initial_stock", self.initial_stock)
        if not 0 <= self.hotness <= 100:
            raise WorkloadSpecError(
                f"hotness is a percentage in [0, 100], got {self.hotness!r}"
            )
        if len(self.mix) != 3 or any(m < 0 for m in self.mix):
            raise WorkloadSpecError(
                "mix must be three non-negative shares "
                f"(NewOrder, Payment, Delivery), got {self.mix!r}"
            )
        if abs(sum(self.mix) - 1.0) > 1e-9:
            raise WorkloadSpecError(
                f"mix must sum to 1.0, got {sum(self.mix)!r}"
            )
        self.sites = tuple(range(self.num_sites))
        self.num_items = self.items_per_district
        self.num_hot = max(1, self.num_items // 100)
        self.hot_items = tuple(range(self.num_hot))

        replicated = {
            "stock_qty": self.sites,
            "warehouse_ytd": self.sites,
            "district_ytd": self.sites,
            "customer_balance": self.sites,
            "unfulfilled": self.sites,
            "delivered": self.sites,
        }
        self.spec = ReplicationSpec(
            bases=dict(replicated), home={b: 0 for b in replicated}
        )

        # Families: NewOrder is site-specific *before* the transform
        # because of the per-site order-id counter.
        self.families: dict[str, Transaction] = {}
        self.variants: dict[str, Transaction] = {}
        self.tx_home: dict[str, int] = {}
        payment = parse_transaction(PAYMENT_SRC)
        delivery = parse_transaction(DELIVERY_SRC)
        self.families["Payment"] = payment
        self.families["Delivery"] = delivery
        for site in self.sites:
            per_site_src = NEW_ORDER_SRC.replace("NEXT_OID", f"next_oid_s{site}")
            new_order = parse_transaction(per_site_src)
            for family_name, tx in (
                ("NewOrder", new_order),
                ("Payment", payment),
                ("Delivery", delivery),
            ):
                variant = transform_for_site(tx, site, self.spec, rename=False)
                name = f"{family_name}@s{site}"
                self.variants[name] = Transaction(
                    name, variant.params, variant.body, variant.assume_distinct
                )
                self.tx_home[name] = site
        self.families["NewOrder"] = parse_transaction(
            NEW_ORDER_SRC.replace("NEXT_OID", "next_oid_s0")
        )

        self.initial_values = self._initial_values()
        self.initial_db = initial_replicated_db(
            self.initial_values, self.spec, self.sites
        )
        # Per-site order counters are plain local objects.
        for site in self.sites:
            for w in range(self.num_warehouses):
                for d in range(self.num_districts):
                    self.initial_db[f"next_oid_s{site}[{w},{d}]"] = 1

    def _initial_values(self) -> dict[str, int]:
        values: dict[str, int] = {}
        for w in range(self.num_warehouses):
            values[f"warehouse_ytd[{w}]"] = 0
            for d in range(self.num_districts):
                values[f"district_ytd[{w},{d}]"] = 0
                values[f"unfulfilled[{w},{d}]"] = 5  # a backlog to deliver
                values[f"delivered[{w},{d}]"] = 0
            for i in range(self.num_items):
                values[f"stock_qty[{w},{i}]"] = self.initial_stock
        for c in range(self.num_customers):
            values[f"customer_balance[{c}]"] = 0
        return values

    # -- analysis products --------------------------------------------------------

    def locate(self, name: str) -> int:
        base = name.split("[", 1)[0]
        if base.startswith("next_oid_s"):
            return int(base[len("next_oid_s") :])
        return self.spec.locate(name, fallback=0)

    def runtime_tables(self) -> list[SymbolicTable]:
        return [build_symbolic_table(tx) for tx in self.variants.values()]

    def _treaty_relevant(self, table: SymbolicTable, home: int) -> bool:
        """Skip families that can never constrain a treaty: a single
        always-true row whose residual reads only home-local objects
        (Payment after the transform)."""
        from repro.analysis.residual import residual_reads

        if len(table.rows) != 1:
            return True
        row = table.rows[0]
        if row.guard != BoolConst(True):
            return True
        for read in residual_reads(row.residual):
            # Parameterized reads locate by their array base (delta
            # bases carry the owning site in their name).
            name = read if isinstance(read, str) else read[0]
            if self.locate(name) != home:
                return True
        return False

    def ground_tables(self) -> list[tuple[SymbolicTable, int]]:
        """Ground instances that participate in treaty generation.

        Payment instances are excluded by the treaty-relevance check
        (single true-guard row, purely local residual), which keeps
        grounding cost independent of the customer count.
        """
        out: list[tuple[SymbolicTable, int]] = []
        warehouses = list(range(self.num_warehouses))
        districts = list(range(self.num_districts))
        items = list(range(self.num_items))
        for name, tx in self.variants.items():
            site = self.tx_home[name]
            family_table = build_symbolic_table(tx)
            if not self._treaty_relevant(family_table, site):
                continue
            if name.startswith("NewOrder"):
                domains = {
                    "w": warehouses,
                    "d": districts,
                    "item": items,
                    "qty": list(QTY_RANGE),
                }
            elif name.startswith("Delivery"):
                domains = {"w": warehouses, "d": districts}
            else:
                domains = {p: [0] for p in tx.params}
            for gi in ground_instances(tx, domains):
                out.append((build_symbolic_table(gi.transaction), site))
        return out

    # -- request generation ------------------------------------------------------------

    def workload_model(self) -> SequenceWorkloadModel:
        def sample_params(rng: random.Random, name: str) -> dict[str, int]:
            return self._sample_params(rng, name.split("@", 1)[0])

        mix = {}
        weights = dict(zip(("NewOrder", "Payment", "Delivery"), self.mix))
        for name in self.variants:
            family = name.split("@", 1)[0]
            mix[name] = weights[family]
        return SequenceWorkloadModel(mix=mix, param_sampler=sample_params)

    def _sample_item(self, rng: random.Random) -> int:
        if rng.random() * 100.0 < self.hotness:
            return rng.choice(self.hot_items)
        return rng.randrange(self.num_hot, self.num_items)

    def _sample_params(self, rng: random.Random, family: str) -> dict[str, int]:
        w = rng.randrange(self.num_warehouses)
        d = rng.randrange(self.num_districts)
        if family == "NewOrder":
            return {
                "w": w,
                "d": d,
                "item": self._sample_item(rng),
                "qty": rng.choice(QTY_RANGE),
            }
        if family == "Payment":
            return {
                "w": w,
                "d": d,
                "c": rng.randrange(self.num_customers),
                "amount": rng.randint(1, 500),
            }
        return {"w": w, "d": d}

    def next_request(self, rng: random.Random, site: int | None = None) -> TpccRequest:
        if site is None:
            site = rng.randrange(self.num_sites)
        family = rng.choices(
            ("NewOrder", "Payment", "Delivery"), weights=self.mix, k=1
        )[0]
        params = self._sample_params(rng, family)
        hot_key: tuple[int, ...] = ()
        if family == "NewOrder":
            hot_key = (params["w"], params["item"])
        elif family == "Delivery":
            hot_key = (params["w"], -1 - params["d"])
        return TpccRequest(
            tx_name=f"{family}@s{site}",
            family=family,
            params=params,
            site=site,
            hot_key=hot_key,
        )

    # -- cluster builders -----------------------------------------------------------------

    def cluster_spec(
        self,
        strategy: str = "optimized",
        lookahead: int = 20,
        cost_factor: int = 3,
        seed: int = 0,
        validate: bool = False,
        adaptive: AdaptiveSettings | None = None,
    ) -> ClusterSpec:
        """The workload as a :class:`ClusterSpec` (feed
        :func:`~repro.protocol.config.build_cluster` with any kernel)."""
        optimizer = None
        if strategy == "optimized":
            optimizer = OptimizerSettings(
                model=self.workload_model(),
                lookahead=lookahead,
                cost_factor=cost_factor,
                rng=random.Random(seed),
            )
        return ClusterSpec(
            sites=self.sites,
            locate=self.locate,
            initial_db=self.initial_db,
            tables=tuple(self.runtime_tables()),
            tx_home=self.tx_home,
            ground_tables=tuple(self.ground_tables()),
            families=dict(self.variants),
            strategy=strategy,
            optimizer=optimizer,
            adaptive=adaptive,
            validate=validate,
        )

    def build_homeostasis(
        self,
        strategy: str = "optimized",
        lookahead: int = 20,
        cost_factor: int = 3,
        seed: int = 0,
        validate: bool = False,
        adaptive: AdaptiveSettings | None = None,
    ) -> HomeostasisCluster:
        spec = self.cluster_spec(
            strategy=strategy,
            lookahead=lookahead,
            cost_factor=cost_factor,
            seed=seed,
            validate=validate,
            adaptive=adaptive,
        )
        return HomeostasisCluster._from_spec(spec)

    def _untransformed_variants(self) -> dict[str, Transaction]:
        """Per-site original programs (for LOCAL / 2PC, which replicate
        full state and need no delta objects)."""
        out: dict[str, Transaction] = {}
        payment = parse_transaction(PAYMENT_SRC)
        delivery = parse_transaction(DELIVERY_SRC)
        for site in self.sites:
            new_order = parse_transaction(
                NEW_ORDER_SRC.replace("NEXT_OID", f"next_oid_s{site}")
            )
            for family_name, tx in (
                ("NewOrder", new_order),
                ("Payment", payment),
                ("Delivery", delivery),
            ):
                out[f"{family_name}@s{site}"] = tx
        return out

    def _plain_initial_db(self) -> dict[str, int]:
        db = dict(self.initial_values)
        for site in self.sites:
            for w in range(self.num_warehouses):
                for d in range(self.num_districts):
                    db[f"next_oid_s{site}[{w},{d}]"] = 1
        return db

    def build_local(self) -> LocalCluster:
        return LocalCluster(
            site_ids=self.sites,
            initial_db=self._plain_initial_db(),
            transactions=self._untransformed_variants(),
            tx_home=self.tx_home,
        )

    def build_2pc(self) -> TwoPhaseCommitCluster:
        return TwoPhaseCommitCluster(
            site_ids=self.sites,
            initial_db=self._plain_initial_db(),
            transactions=self._untransformed_variants(),
            tx_home=self.tx_home,
        )

    def reference_transaction(self, name: str) -> Transaction:
        return self.variants[name]
