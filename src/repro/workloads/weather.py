"""Appendix D: the weather-monitoring examples beyond top-k.

Two programs over per-day temperature observations:

1. **top-k of minimums** -- each day keeps its record low; the
   program prints the k highest record lows.  The insert's observable
   behaviour changes only when the new value is a new minimum for its
   day *and* that minimum enters the top-k -- the k+2 case structure
   Appendix D describes, which our analysis derives as symbolic-table
   rows.

2. **top-k temperature differences** -- each day keeps its record low
   and high; the program prints the largest (high - low) spread.  The
   case analysis is subtler (new max, new min, enters/leaves top-k);
   the paper's argument is that deriving these treaties manually is
   error-prone while the analysis is mechanical.

For tractability the programs are generated for a concrete number of
days and k (bounded arrays, Appendix A style, with the comparison
networks unrolled); the module exposes builders plus the derived
tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Transaction
from repro.lang.parser import parse_transaction


def record_low_source(num_days: int) -> str:
    """``RecordLow(day, temp)``: update a day's record low.

    Appendix-A style: the parameterized slot update stays compressed.
    """
    return """
    transaction RecordLow(day, temp) {
      m := read(daymin(@day));
      if @temp < m then { write(daymin(@day) = @temp) } else { skip }
    }
    """


def record_range_source(num_days: int) -> str:
    """``RecordObs(day, temp)``: update both record low and high."""
    return """
    transaction RecordObs(day, temp) {
      lo := read(daymin(@day));
      hi := read(daymax(@day));
      if @temp < lo then { write(daymin(@day) = @temp) } else { skip }
      if @temp > hi then { write(daymax(@day) = @temp) } else { skip }
    }
    """


def _max2_print(values: list[str]) -> str:
    """Unrolled code printing the top-2 of the given expressions.

    The L encoding of a small sorting network: temporaries m1 >= m2
    are threaded through an if-chain, then printed.
    """
    lines = ["m1 := -10000;", "m2 := -10000;"]
    for v in values:
        lines.append(
            f"""
      if {v} > m1 then {{ m2 := m1; m1 := {v} }}
      else {{ if {v} > m2 then {{ m2 := {v} }} else {{ skip }} }}"""
        )
    lines.append("print(m1); print(m2);")
    return "\n".join(lines)


def top2_of_minimums_source(num_days: int) -> str:
    """Insert an observation, then print the 2 highest record lows.

    This is the Appendix D "maximum of minimums" program for k = 2:
    the print makes the top-2 of the per-day minimums observable, so
    the symbolic table's rows spell out the k+2 behavioural cases.
    """
    reads = "\n".join(f"v{d} := read(daymin({d}));" for d in range(num_days))
    tops = _max2_print([f"v{d}" for d in range(num_days)])
    return f"""
    transaction Top2Lows(day, temp) {{
      m := read(daymin(@day));
      if @temp < m then {{ write(daymin(@day) = @temp) }} else {{ skip }}
      {reads}
      {tops}
    }}
    """


def top2_of_differences_source(num_days: int) -> str:
    """Insert an observation, then print the 2 largest (high - low)."""
    update = """
      lo := read(daymin(@day));
      hi := read(daymax(@day));
      if @temp < lo then { write(daymin(@day) = @temp) } else { skip }
      if @temp > hi then { write(daymax(@day) = @temp) } else { skip }
    """
    reads = "\n".join(
        f"d{d} := read(daymax({d})) - read(daymin({d}));" for d in range(num_days)
    )
    tops = _max2_print([f"d{d}" for d in range(num_days)])
    return f"""
    transaction Top2Diffs(day, temp) {{
      {update}
      {reads}
      {tops}
    }}
    """


@dataclass
class WeatherWorkload:
    """Builders for the Appendix D analyses."""

    num_days: int = 3

    def record_low(self) -> Transaction:
        return parse_transaction(record_low_source(self.num_days))

    def record_obs(self) -> Transaction:
        return parse_transaction(record_range_source(self.num_days))

    def top2_lows(self) -> Transaction:
        return parse_transaction(top2_of_minimums_source(self.num_days))

    def top2_diffs(self) -> Transaction:
        return parse_transaction(top2_of_differences_source(self.num_days))

    def top2_lows_table(self) -> SymbolicTable:
        return build_symbolic_table(self.top2_lows())

    def top2_diffs_table(self) -> SymbolicTable:
        return build_symbolic_table(self.top2_diffs())
