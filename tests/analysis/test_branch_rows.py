"""Branch-row coverage for the symbolic executor.

The path-sensitive treaty tier and the coordination-freedom
classifier both lean on the symbolic table's row split being a true
partition of the state space: every database matches exactly one
row's guard, and nested / iterated control flow multiplies rows
rather than merging them.  These tests pin that contract down on the
shapes the workloads actually use: nested conditionals, parameter
guards, and ``foreach`` bodies containing conditionals.
"""

import pytest

from repro.analysis.symbolic import (
    AnalysisError,
    build_symbolic_table,
    rows_are_exclusive,
)
from repro.lang.lpp import desugar_transaction
from repro.lang.parser import parse_transaction

NESTED_SRC = """
transaction Nest() {
  v := read(x);
  if v < 10 then {
    if v < 5 then { write(x = v + 1) } else { write(x = v + 2) }
  } else { write(x = 0) }
}
"""

PARAM_GUARD_SRC = """
transaction Gate(n) {
  v := read(x);
  if v < @n then { write(x = v + 1) } else { print(v) }
}
"""

SWEEP_SRC = """
transaction Sweep() {
  foreach i in q {
    v := read(q(i));
    if v < 5 then { write(q(i) = v + 1) } else { skip }
  }
}
"""


class TestNestedIf:
    def test_one_row_per_leaf(self):
        table = build_symbolic_table(parse_transaction(NESTED_SRC))
        assert len(table.rows) == 3

    def test_guards_partition_the_state_space(self):
        table = build_symbolic_table(parse_transaction(NESTED_SRC))
        databases = [{"x": k} for k in range(-3, 15)]
        assert rows_are_exclusive(table, databases)

    def test_each_leaf_write_survives_in_its_residual(self):
        table = build_symbolic_table(parse_transaction(NESTED_SRC))
        residuals = sorted(row.residual.pretty() for row in table.rows)
        assert any("+ 1" in r for r in residuals)
        assert any("+ 2" in r for r in residuals)
        assert any("= 0" in r for r in residuals)


class TestParameterGuards:
    def test_exclusive_under_any_parameter_binding(self):
        table = build_symbolic_table(parse_transaction(PARAM_GUARD_SRC))
        assert len(table.rows) == 2
        databases = [{"x": k} for k in range(-2, 12)]
        for n in (-1, 0, 5, 11):
            assert rows_are_exclusive(table, databases, params={"n": n})

    def test_exhaustive_not_just_disjoint(self):
        # rows_are_exclusive requires exactly one matching guard, so a
        # database matching zero rows also fails it.
        table = build_symbolic_table(parse_transaction(PARAM_GUARD_SRC))
        boundary = [{"x": 7}]
        assert rows_are_exclusive(table, boundary, params={"n": 7})
        assert rows_are_exclusive(table, boundary, params={"n": 8})


class TestForEachRows:
    def test_foreach_must_be_desugared_first(self):
        tx = parse_transaction(SWEEP_SRC)
        with pytest.raises(AnalysisError):
            build_symbolic_table(tx)

    def test_unrolled_body_multiplies_rows(self):
        tx = desugar_transaction(parse_transaction(SWEEP_SRC), arrays={"q": (3,)})
        table = build_symbolic_table(tx)
        # Three unrolled iterations, each with an independent 2-way
        # branch: one row per combination.
        assert len(table.rows) == 8

    def test_unrolled_guards_partition(self):
        tx = desugar_transaction(parse_transaction(SWEEP_SRC), arrays={"q": (2,)})
        table = build_symbolic_table(tx)
        assert len(table.rows) == 4
        databases = [
            {"q[0]": a, "q[1]": b} for a in (0, 4, 5, 9) for b in (0, 4, 5, 9)
        ]
        assert rows_are_exclusive(table, databases)

    def test_unrolled_residuals_write_concrete_cells(self):
        tx = desugar_transaction(parse_transaction(SWEEP_SRC), arrays={"q": (2,)})
        table = build_symbolic_table(tx)
        pretty = " ".join(row.residual.pretty() for row in table.rows)
        assert "q[0]" in pretty or "q(0)" in pretty
