"""Tests for the coordination-freedom classifier and its witnesses."""

import dataclasses

import pytest

from repro.analysis.classify import (
    PATH_VERDICTS,
    VERDICTS,
    ClassificationError,
    check_witness,
    classify_catalog,
    classify_procedure,
    classify_row,
)
from repro.analysis.pathsplit import summarize_writes
from repro.analysis.symbolic import build_symbolic_table
from repro.lang.parser import parse_transaction
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.terms import ObjT
from repro.protocol.catalog import StoredProcedureCatalog
from repro.treaty.table import LocalTreaty


def _summary(source):
    table = build_symbolic_table(parse_transaction(source))
    (row,) = table.rows
    return summarize_writes(row.residual)


def _le(coeffs, bound):
    expr = LinearExpr.make({ObjT(name): c for name, c in coeffs.items()})
    return LinearConstraint.make(expr, "<=", bound)


def _pin(name, value):
    return LinearConstraint.make(LinearExpr.make({ObjT(name): 1}), "=", value)


READ_ONLY = _summary("transaction P() { v := read(x); print(v) }")
DRAIN = _summary("transaction D() { v := read(x); write(x = v - 1) }")
BUMP = _summary("transaction B() { v := read(x); write(x = v + 1) }")
PARAM = _summary(
    "transaction Q(i) { v := read(qty(@i)); write(qty(@i) = v - 1) }"
)


class TestClassifyRow:
    def test_read_only_is_free_and_checkable(self):
        constraints = (_le({"x": 1}, 10),)
        path, check = classify_row(READ_ONLY, constraints, "P", 0)
        assert path.verdict == "FREE"
        assert path.reason == "read-only"
        assert check.kind == "free"
        check_witness(path, READ_ONLY, constraints)

    def test_untouched_invariants_is_free(self):
        constraints = (_le({"y": 1}, 10),)
        path, check = classify_row(DRAIN, constraints, "D", 0)
        assert path.verdict == "FREE"
        assert path.reason == "untouched-invariants"
        assert check.kind == "free"
        check_witness(path, DRAIN, constraints)

    def test_monotone_safe_is_free_absorb(self):
        constraints = (_le({"x": 1}, 10),)
        path, check = classify_row(DRAIN, constraints, "D", 0)
        assert path.verdict == "FREE"
        assert path.reason == "monotone-safe"
        assert check.kind == "free-absorb"
        witness = path.witness_dict()
        assert witness["touching"] == [(0, "x", 1, -1)]
        check_witness(path, DRAIN, constraints)

    def test_constant_write_into_pin_is_sync(self):
        constraints = (_pin("x", 5),)
        path, check = classify_row(BUMP, constraints, "B", 0)
        assert path.verdict == "SYNC"
        assert path.reason == "breaks-pin"
        assert path.witness_dict()["pins"] == [(0, "x", 1)]
        # The runtime check still partitions; SYNC is the *verdict*.
        assert check.kind == "partition"
        check_witness(path, BUMP, constraints)

    def test_parameterized_writes_are_treaty(self):
        constraints = (_le({"qty[0]": -1}, -1),)
        path, check = classify_row(PARAM, constraints, "Q", 0)
        assert path.verdict == "TREATY"
        assert check.kind == "full"
        check_witness(path, PARAM, constraints)

    def test_partitioned_treaty_witness(self):
        constraints = (_le({"x": -1}, -1), _le({"y": 1}, 5))
        path, check = classify_row(DRAIN, constraints, "D", 0)
        assert path.verdict == "TREATY"
        assert check.kind == "partition"
        assert path.witness_dict()["clause_indices"] == [0]
        check_witness(path, DRAIN, constraints)

    def test_verdict_vocabulary(self):
        for constraints in ((), (_le({"x": 1}, 10),), (_pin("x", 5),)):
            for summary in (READ_ONLY, DRAIN, BUMP, PARAM):
                path, _ = classify_row(summary, constraints, "T", 0)
                assert path.verdict in PATH_VERDICTS


class TestRollup:
    def test_all_free_rolls_to_free(self):
        constraints = (_le({"y": 1}, 10),)
        cls, checks = classify_procedure(
            "T", [(0, READ_ONLY), (1, DRAIN)], constraints
        )
        assert cls.verdict == "FREE"
        assert cls.free_paths == (0, 1)
        assert all(check.bypasses_check for check in checks)

    def test_mixed_rolls_to_path_sensitive(self):
        constraints = (_le({"x": -1}, -1),)
        cls, _ = classify_procedure(
            "T", [(0, READ_ONLY), (1, DRAIN)], constraints
        )
        assert cls.verdict == "PATH_SENSITIVE"
        assert cls.free_paths == (0,)

    def test_all_checked_rolls_to_treaty(self):
        constraints = (_le({"x": -1}, -1), _le({"qty[0]": -1}, -1))
        cls, _ = classify_procedure("T", [(0, DRAIN), (1, PARAM)], constraints)
        assert cls.verdict == "TREATY"
        assert cls.free_paths == ()

    def test_all_sync_rolls_to_sync(self):
        constraints = (_pin("x", 5),)
        cls, _ = classify_procedure("T", [(0, BUMP)], constraints)
        assert cls.verdict == "SYNC"

    def test_rollup_vocabulary(self):
        constraints = (_le({"x": 1}, 10),)
        cls, _ = classify_procedure("T", [(0, DRAIN)], constraints)
        assert cls.verdict in VERDICTS


class TestWitnessTampering:
    def test_overlapping_free_witness_rejected(self):
        constraints = (_le({"y": 1}, 10),)
        path, _ = classify_row(DRAIN, constraints, "D", 0)
        forged = dataclasses.replace(
            path,
            witness=(("clause_bases", ["x"]), ("write_bases", ["x"])),
        )
        with pytest.raises(ClassificationError):
            check_witness(forged, DRAIN, constraints)

    def test_witness_must_match_actual_writes(self):
        constraints = (_le({"y": 1}, 10),)
        path, _ = classify_row(DRAIN, constraints, "D", 0)
        forged = dataclasses.replace(
            path,
            witness=(("clause_bases", ["y"]), ("write_bases", [])),
        )
        with pytest.raises(ClassificationError):
            check_witness(forged, DRAIN, constraints)

    def test_monotone_witness_checks_clause_direction(self):
        constraints = (_le({"x": 1}, 10),)
        path, _ = classify_row(DRAIN, constraints, "D", 0)
        # Claim the delta moved toward the bound: must be rejected.
        forged = dataclasses.replace(
            path,
            witness=(("deltas", [("x", -1)]), ("touching", [(0, "x", 1, 1)])),
        )
        with pytest.raises(ClassificationError):
            check_witness(forged, DRAIN, constraints)

    def test_monotone_witness_rejects_pin_clause(self):
        constraints = (_pin("x", 5),)
        path, _ = classify_row(DRAIN, (_le({"x": 1}, 10),), "D", 0)
        with pytest.raises(ClassificationError):
            check_witness(path, DRAIN, constraints)

    def test_sync_witness_needs_pins(self):
        constraints = (_pin("x", 5),)
        path, _ = classify_row(BUMP, constraints, "B", 0)
        forged = dataclasses.replace(path, witness=(("pins", []),))
        with pytest.raises(ClassificationError):
            check_witness(forged, BUMP, constraints)

    def test_sync_witness_rejects_zero_delta(self):
        constraints = (_pin("x", 5),)
        path, _ = classify_row(BUMP, constraints, "B", 0)
        forged = dataclasses.replace(path, witness=(("pins", [(0, "x", 0)]),))
        with pytest.raises(ClassificationError):
            check_witness(forged, BUMP, constraints)

    def test_sync_witness_rejects_unwritten_base(self):
        constraints = (_pin("x", 5), _pin("z", 1))
        path, _ = classify_row(BUMP, constraints, "B", 0)
        forged = dataclasses.replace(path, witness=(("pins", [(1, "z", 1)]),))
        with pytest.raises(ClassificationError):
            check_witness(forged, BUMP, constraints)

    def test_partition_witness_needs_ground_writes(self):
        constraints = (_le({"qty[0]": -1}, -1),)
        path, _ = classify_row(DRAIN, (_le({"x": -1}, -1),), "D", 0)
        with pytest.raises(ClassificationError):
            check_witness(path, PARAM, constraints)

    def test_unknown_verdict_rejected(self):
        constraints = (_le({"x": 1}, 10),)
        path, _ = classify_row(DRAIN, constraints, "D", 0)
        forged = dataclasses.replace(path, verdict="MAYBE")
        with pytest.raises(ClassificationError):
            check_witness(forged, DRAIN, constraints)


class TestClassifyCatalog:
    def _catalog(self):
        catalog = StoredProcedureCatalog()
        catalog.register(
            build_symbolic_table(
                parse_transaction(
                    """
                    transaction Incr() {
                      v := read(x);
                      if v < 10 then { write(x = v + 1) } else { print(v) }
                    }
                    """
                )
            )
        )
        return catalog

    def test_against_treaty(self):
        treaty = LocalTreaty(site=0, constraints=[_le({"x": 1}, 20)])
        verdicts = classify_catalog(self._catalog(), treaty)
        assert verdicts["Incr"].verdict == "PATH_SENSITIVE"

    def test_no_treaty_is_all_free(self):
        verdicts = classify_catalog(self._catalog(), None)
        assert verdicts["Incr"].verdict == "FREE"

    def test_every_witness_recheckable(self):
        treaty = LocalTreaty(site=0, constraints=[_le({"x": 1}, 20)])
        catalog = self._catalog()
        verdicts = classify_catalog(catalog, treaty)
        constraints = treaty.constraints
        for tx_name, classification in verdicts.items():
            procedures = catalog.procedures[tx_name]
            for proc, path in zip(procedures, classification.paths):
                check_witness(
                    path, summarize_writes(proc.row.residual), constraints
                )
