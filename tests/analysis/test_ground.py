"""Tests for transaction grounding (repro.analysis.ground)."""

import pytest

from repro.analysis.ground import (
    ground_instances,
    instance_name,
    subst_params_com,
)
from repro.lang.interp import evaluate
from repro.lang.parser import parse_transaction

BUY_SRC = """
transaction Buy(i) {
  q := read(qty(@i));
  if q > @i then { write(qty(@i) = q - 1) } else { write(qty(@i) = 9) }
}
"""


class TestSubstitution:
    def test_body_substitution_matches_param_binding(self):
        tx = parse_transaction(BUY_SRC)
        db = {"qty[2]": 7}
        bound = evaluate(tx, db, params={"i": 2})
        grounded_body = subst_params_com(tx.body, {"i": 2})
        from repro.lang.ast import Transaction

        grounded = evaluate(Transaction("g", (), grounded_body), db)
        assert bound.db == grounded.db and bound.log == grounded.log

    def test_partial_substitution_keeps_other_params(self):
        tx = parse_transaction(
            "transaction T(a, b) { write(x = @a + @b) }"
        )
        body = subst_params_com(tx.body, {"a": 5})
        rendered = body.pretty()
        assert "@b" in rendered and "@a" not in rendered


class TestGroundInstances:
    def test_product_of_domains(self):
        tx = parse_transaction("transaction T(a, b) { write(q(@a) = @b) }")
        out = ground_instances(tx, {"a": [0, 1], "b": [5, 6, 7]})
        assert len(out) == 6
        assert all(gi.transaction.params == () for gi in out)

    def test_names_are_unique_and_stable(self):
        tx = parse_transaction("transaction T(a) { write(q(@a) = 1) }")
        out = ground_instances(tx, {"a": [3, 4]})
        names = [gi.transaction.name for gi in out]
        assert names == [instance_name("T", {"a": 3}), instance_name("T", {"a": 4})]
        assert len(set(names)) == 2

    def test_missing_domain_rejected(self):
        tx = parse_transaction("transaction T(a, b) { write(x = @a + @b) }")
        with pytest.raises(ValueError):
            ground_instances(tx, {"a": [1]})

    def test_distinct_combinations_skipped(self):
        tx = parse_transaction(
            "transaction T(a, b) distinct(a, b) "
            "{ write(q(@a) = 1); write(q(@b) = 2) }"
        )
        out = ground_instances(tx, {"a": [0, 1], "b": [0, 1]})
        assert len(out) == 2  # (0,1) and (1,0); the diagonal is excluded

    def test_instance_semantics(self):
        tx = parse_transaction(BUY_SRC)
        for gi in ground_instances(tx, {"i": [0, 1, 2]}):
            values = dict(gi.params)
            db = {f"qty[{values['i']}]": 10}
            direct = evaluate(tx, db, params=values)
            grounded = evaluate(gi.transaction, db)
            assert direct.db == grounded.db

    def test_family_metadata(self):
        tx = parse_transaction("transaction T(a) { write(q(@a) = 1) }")
        gi = ground_instances(tx, {"a": [7]})[0]
        assert gi.family == "T"
        assert gi.params == (("a", 7),)
