"""Tests for joint tables (Section 2.2) and factorization (Section 5.1)."""

import pytest

from repro.analysis.factorize import factorize_workload, transactions_may_conflict
from repro.analysis.joint import JointTableError, build_joint_table
from repro.analysis.symbolic import build_symbolic_table
from repro.lang.parser import parse_transaction

T1_SRC = """
transaction T1() {
  xh := read(x); yh := read(y);
  if xh + yh < 10 then { write(x = xh + 1) } else { write(x = xh - 1) }
}
"""
T2_SRC = """
transaction T2() {
  xh := read(x); yh := read(y);
  if xh + yh < 20 then { write(y = yh + 1) } else { write(y = yh - 1) }
}
"""


def _tables(*sources):
    return [build_symbolic_table(parse_transaction(s)) for s in sources]


class TestJointTable:
    def test_figure_4c_three_rows(self):
        joint = build_joint_table(_tables(T1_SRC, T2_SRC))
        assert len(joint) == 3  # the (x+y<10, x+y>=20) combo is pruned
        guards = [row.guard.pretty() for row in joint.rows]
        assert "(x + y) < 10" in guards

    def test_unsimplified_keeps_product(self):
        joint = build_joint_table(_tables(T1_SRC, T2_SRC), simplify=False)
        assert len(joint) == 4

    def test_lookup_unique(self):
        joint = build_joint_table(_tables(T1_SRC, T2_SRC))
        db = {"x": 10, "y": 13}
        row = joint.lookup(lambda n: db.get(n, 0))
        assert row.guard.evaluate(lambda n: db.get(n, 0))
        assert len(row.residuals) == 2

    def test_residual_for(self):
        joint = build_joint_table(_tables(T1_SRC, T2_SRC))
        db = {"x": 0, "y": 0}
        row = joint.lookup(lambda n: db.get(n, 0))
        residual = joint.residual_for(row, "T2")
        assert "y" in residual.pretty()

    def test_param_renaming(self):
        a = build_symbolic_table(
            parse_transaction(
                "transaction A(p) { q := read(x); "
                "if q < @p then { write(x = q + 1) } else { write(x = q - 1) } }"
            )
        )
        b = build_symbolic_table(
            parse_transaction(
                "transaction B(p) { q := read(x); "
                "if q < @p then { write(x = q + 2) } else { write(x = q - 2) } }"
            )
        )
        joint = build_joint_table([a, b])
        names = {p.name for row in joint.rows for p in row.guard.params()}
        assert names <= {"A.p", "B.p"}

    def test_duplicate_names_rejected(self):
        t = _tables(T1_SRC)[0]
        with pytest.raises(JointTableError):
            build_joint_table([t, t])

    def test_empty_rejected(self):
        with pytest.raises(JointTableError):
            build_joint_table([])


class TestConflictDetection:
    def test_shared_write_read(self):
        a = parse_transaction("transaction A() { write(x = 1) }")
        b = parse_transaction("transaction B() { t := read(x); write(y = t) }")
        assert transactions_may_conflict(a, b)

    def test_read_read_is_independent(self):
        a = parse_transaction("transaction A() { t := read(x); write(u = t) }")
        b = parse_transaction("transaction B() { t := read(x); write(v = t) }")
        assert not transactions_may_conflict(a, b)

    def test_distinct_ground_slots_independent(self):
        a = parse_transaction("transaction A() { write(q(1) = 1) }")
        b = parse_transaction("transaction B() { t := read(q(2)); write(z = t) }")
        assert not transactions_may_conflict(a, b)

    def test_parameterized_conflicts_with_base(self):
        a = parse_transaction("transaction A(i) { write(q(@i) = 1) }")
        b = parse_transaction("transaction B() { t := read(q(2)); write(z = t) }")
        assert transactions_may_conflict(a, b)


class TestFactorization:
    def test_independent_split(self):
        tables = _tables(
            "transaction A() { t := read(x); write(x = t + 1) }",
            "transaction B() { t := read(y); write(y = t + 1) }",
        )
        factored = factorize_workload(tables)
        assert len(factored.factors) == 2
        assert factored.materialized_rows() == 2
        assert factored.implied_rows() == 1

    def test_dependent_merge(self):
        factored = factorize_workload(_tables(T1_SRC, T2_SRC))
        assert len(factored.factors) == 1

    def test_lookup_assembles_across_factors(self):
        tables = _tables(
            "transaction A() { t := read(x); if t < 5 then { write(x = t + 1) } else { write(x = 0) } }",
            "transaction B() { t := read(y); if t < 7 then { write(y = t + 1) } else { write(y = 0) } }",
        )
        factored = factorize_workload(tables)
        db = {"x": 2, "y": 9}
        row = factored.lookup(lambda n: db.get(n, 0))
        assert len(row.residuals) == 2
        assert row.guard.evaluate(lambda n: db.get(n, 0))

    def test_factorized_matches_full_joint(self):
        """Semantic equivalence: the factorized lookup agrees with the
        monolithic joint table on every database."""
        sources = (
            "transaction A() { t := read(x); if t < 5 then { write(x = t + 1) } else { write(x = 0) } }",
            "transaction B() { t := read(y); if t < 7 then { write(y = t + 1) } else { write(y = 0) } }",
            T1_SRC,
        )
        tables = _tables(*sources)
        factored = factorize_workload(tables)
        full = build_joint_table(tables)
        for vx in range(-1, 12, 3):
            for vy in range(-1, 12, 4):
                db = {"x": vx, "y": vy}
                lookup = lambda n: db.get(n, 0)  # noqa: E731
                a = factored.lookup(lookup)
                b = full.lookup(lookup)
                # Same residuals modulo transaction order normalization.
                assert {r.pretty() for r in a.residuals} == {
                    r.pretty() for r in b.residuals
                }

    def test_scale_many_items(self):
        """Grounding a parameterized family over n items factorizes
        into n independent groups (what makes TPC-C tractable)."""
        from repro.analysis.ground import ground_instances

        family = parse_transaction(
            "transaction Buy(i) { q := read(qty(@i)); "
            "if q > 1 then { write(qty(@i) = q - 1) } else { write(qty(@i) = 9) } }"
        )
        tables = [
            build_symbolic_table(gi.transaction)
            for gi in ground_instances(family, {"i": range(30)})
        ]
        factored = factorize_workload(tables)
        assert len(factored.factors) == 30
