"""Tests for per-path write summaries and treaty-check partitioning."""

import pytest

from repro.analysis.pathsplit import (
    CHECK_KINDS,
    base_of_name,
    build_path_checks,
    classify_path,
    clause_bases,
    decode_path_check,
    decode_path_checks,
    encode_path_checks,
    summarize_writes,
)
from repro.analysis.symbolic import build_symbolic_table
from repro.lang.parser import parse_transaction
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.terms import ObjT
from repro.protocol.catalog import StoredProcedureCatalog
from repro.treaty.table import LocalTreaty

READ_ONLY_SRC = """
transaction Probe() {
  v := read(x);
  print(v)
}
"""

DRAIN_SRC = """
transaction Drain() {
  v := read(x);
  write(x = v - 1)
}
"""

DOUBLE_SRC = """
transaction Double() {
  v := read(x);
  write(x = v + v)
}
"""

PARAM_SRC = """
transaction BuyP(item) {
  v := read(qty(@item));
  write(qty(@item) = v - 1)
}
"""

GROUND_CELL_SRC = """
transaction Tap() {
  v := read(qty(0));
  write(qty(0) = v - 1)
}
"""


def _rows(source):
    table = build_symbolic_table(parse_transaction(source))
    return [row.residual for row in table.rows]


def _only_summary(source):
    (residual,) = _rows(source)
    return summarize_writes(residual)


def _le(coeffs, bound):
    expr = LinearExpr.make({ObjT(name): c for name, c in coeffs.items()})
    return LinearConstraint.make(expr, "<=", bound)


def _pin(name, value):
    return LinearConstraint.make(LinearExpr.make({ObjT(name): 1}), "=", value)


class TestSummarizeWrites:
    def test_read_only(self):
        summary = _only_summary(READ_ONLY_SRC)
        assert summary.read_only
        assert summary.bases == frozenset()
        assert summary.ground == frozenset()
        assert summary.const_deltas == ()

    def test_scalar_const_delta(self):
        summary = _only_summary(DRAIN_SRC)
        assert summary.bases == frozenset({"x"})
        assert summary.ground == frozenset({"x"})
        assert summary.const_deltas == (("x", -1),)
        assert summary.delta_by_base() == {"x": [-1]}

    def test_non_constant_delta(self):
        summary = _only_summary(DOUBLE_SRC)
        assert summary.bases == frozenset({"x"})
        assert summary.ground == frozenset({"x"})
        assert summary.const_deltas is None
        assert summary.delta_by_base() == {}

    def test_parameterized_target_is_not_ground(self):
        summary = _only_summary(PARAM_SRC)
        assert summary.bases == frozenset({"qty"})
        assert summary.ground is None

    def test_ground_array_cell(self):
        summary = _only_summary(GROUND_CELL_SRC)
        assert summary.bases == frozenset({"qty"})
        assert summary.ground is not None
        (name,) = summary.ground
        assert base_of_name(name) == "qty"
        assert summary.const_deltas == ((name, -1),)


class TestClausebases:
    def test_scalars_and_cells(self):
        cons = (_le({"x": 1}, 10), _le({"qty[3]": 1, "qty[4]": -1}, 0))
        assert clause_bases(cons) == frozenset({"x", "qty"})


class TestClassifyPath:
    def test_read_only_is_free(self):
        summary = _only_summary(READ_ONLY_SRC)
        check = classify_path(summary, (_le({"x": 1}, 10),), "Probe", 0)
        assert check.kind == "free"
        assert check.reason == "read-only"
        assert check.bypasses_check
        assert check.clause_indices == ()

    def test_disjoint_bases_are_free(self):
        summary = _only_summary(DRAIN_SRC)
        check = classify_path(summary, (_le({"y": 1}, 10),), "Drain", 0)
        assert check.kind == "free"
        assert check.reason == "untouched-invariants"
        assert check.bypasses_check

    def test_monotone_safe_delta_absorbs(self):
        # x <= 10 with delta -1: the write moves away from the bound.
        summary = _only_summary(DRAIN_SRC)
        check = classify_path(summary, (_le({"x": 1}, 10),), "Drain", 0)
        assert check.kind == "free-absorb"
        assert check.reason == "monotone-safe"
        assert check.bypasses_check

    def test_unsafe_delta_partitions(self):
        # x >= 1 normalizes to -x <= -1: delta -1 moves toward the bound,
        # so the ground write set compiles to a clause-index subset.
        constraints = (_le({"x": -1}, -1), _le({"y": 1}, 5))
        summary = _only_summary(DRAIN_SRC)
        check = classify_path(summary, constraints, "Drain", 0)
        assert check.kind == "partition"
        assert check.clause_indices == (0,)
        assert not check.bypasses_check

    def test_partition_selects_every_touching_clause(self):
        constraints = (
            _le({"x": -1}, -1),
            _le({"y": 1}, 5),
            _le({"x": 1, "y": 1}, 20),
        )
        summary = _only_summary(DOUBLE_SRC)
        check = classify_path(summary, constraints, "Double", 0)
        assert check.kind == "partition"
        assert check.clause_indices == (0, 2)

    def test_pin_on_written_base_blocks_absorb(self):
        summary = _only_summary(DRAIN_SRC)
        check = classify_path(summary, (_pin("x", 5),), "Drain", 0)
        assert check.kind == "partition"
        assert check.clause_indices == (0,)

    def test_parameterized_writes_fall_back_to_full(self):
        summary = _only_summary(PARAM_SRC)
        constraints = (_le({"qty[0]": -1}, -1),)
        check = classify_path(summary, constraints, "BuyP", 0)
        assert check.kind == "full"
        assert check.reason == "parameterized-writes"

    def test_ground_cell_partitions_against_cell_clauses(self):
        summary = _only_summary(GROUND_CELL_SRC)
        (name,) = summary.ground
        constraints = (_le({name: -1}, -1), _le({"qty[9]": -1}, -1))
        check = classify_path(summary, constraints, "Tap", 0)
        assert check.kind == "partition"
        assert check.clause_indices == (0,)


class TestBuildAndCodec:
    def _catalog(self):
        catalog = StoredProcedureCatalog()
        catalog.register(build_symbolic_table(parse_transaction(DRAIN_SRC)))
        catalog.register(build_symbolic_table(parse_transaction(READ_ONLY_SRC)))
        return catalog

    def test_no_treaty_means_every_path_free(self):
        paths = build_path_checks(self._catalog(), None)
        assert set(paths) == {"Drain", "Probe"}
        for checks in paths.values():
            assert all(check.kind == "free" for check in checks)

    def test_build_against_treaty(self):
        treaty = LocalTreaty(site=0, constraints=[_le({"x": -1}, -1)])
        paths = build_path_checks(self._catalog(), treaty)
        (drain,) = paths["Drain"]
        assert drain.kind == "partition"
        (probe,) = paths["Probe"]
        assert probe.kind == "free"

    def test_encode_decode_round_trip(self):
        treaty = LocalTreaty(site=0, constraints=[_le({"x": -1}, -1)])
        paths = build_path_checks(self._catalog(), treaty)
        payload = encode_path_checks(paths)
        assert decode_path_checks(payload) == paths

    def test_decode_single_check(self):
        check = decode_path_check("T", [2, "partition", [0, 3], "ground-writes"])
        assert check.tx_name == "T"
        assert check.row_index == 2
        assert check.kind == "partition"
        assert check.clause_indices == (0, 3)

    def test_kind_vocabulary_is_closed(self):
        treaty = LocalTreaty(site=0, constraints=[_le({"x": -1}, -1)])
        for checks in build_path_checks(self._catalog(), treaty).values():
            for check in checks:
                assert check.kind in CHECK_KINDS


class TestBranchedProcedure:
    def test_each_row_gets_its_own_check(self):
        src = """
        transaction Incr() {
          v := read(x);
          if v < 10 then { write(x = v + 1) } else { print(v) }
        }
        """
        catalog = StoredProcedureCatalog()
        catalog.register(build_symbolic_table(parse_transaction(src)))
        treaty = LocalTreaty(site=0, constraints=[_le({"x": 1}, 20)])
        checks = build_path_checks(catalog, treaty)["Incr"]
        kinds = {check.row_index: check.kind for check in checks}
        # The increment path moves x toward its bound; the print path
        # writes nothing at all.
        assert sorted(kinds.values()) == ["free", "partition"]


@pytest.mark.parametrize(
    "name,expected",
    [("x", "x"), ("qty[7]", "qty"), ("daymin[2]", "daymin")],
)
def test_base_of_name(name, expected):
    assert base_of_name(name) == expected
