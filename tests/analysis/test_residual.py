"""Tests for residual optimization (dead reads, linear cancellation)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.residual import (
    eliminate_dead_assignments,
    optimize_residual,
    residual_reads,
    simplify_writes_linear,
)
from repro.analysis.symbolic import build_symbolic_table
from repro.lang.ast import Transaction
from repro.lang.interp import evaluate
from repro.lang.parser import parse_transaction


def _body(src, params=()):
    return parse_transaction(src, params=params).body


class TestDeadAssignments:
    def test_dead_read_removed(self):
        body = _body("a := read(x); b := read(y); write(z = a + 1)")
        out = eliminate_dead_assignments(body)
        assert "read(y)" not in out.pretty()

    def test_live_chain_kept(self):
        body = _body("a := read(x); b := a + 1; write(z = b)")
        out = eliminate_dead_assignments(body)
        assert "read(x)" in out.pretty()

    def test_print_keeps_reads_live(self):
        body = _body("a := read(x); print(a)")
        out = eliminate_dead_assignments(body)
        assert "read(x)" in out.pretty()

    def test_array_index_uses_are_live(self):
        body = _body("i := read(sel); write(a(i) = 1)")
        out = eliminate_dead_assignments(body)
        assert "read(sel)" in out.pretty()


class TestLinearCancellation:
    def test_figure_23_cancellation(self):
        """Appendix B: w(dx1 = xh - 1 - r(x)) with xh = r(x) + r(dx1)
        simplifies to w(dx1 = r(dx1) - 1)."""
        body = _body(
            "xh := read(x) + read(dx1); write(dx1 = xh - 1 - read(x))"
        )
        out = optimize_residual(body)
        rendered = out.pretty()
        assert "read(x)" not in rendered
        assert "read(dx1)" in rendered

    def test_nonlinear_left_alone(self):
        body = _body("a := read(x); write(z = a * a)")
        out = simplify_writes_linear(body)
        db = {"x": 7}
        before = evaluate(Transaction("b", (), body), db)
        after = evaluate(Transaction("a", (), out), db)
        assert before.db == after.db

    def test_reads_through_params_kept(self):
        body = _body("q := read(qty(@i)); write(qty(@i) = q - 1)", params=("i",))
        out = optimize_residual(body)
        assert "qty" in out.pretty()


class TestResidualReads:
    def test_ground_reads(self):
        body = _body("a := read(x); write(z = a + read(y))")
        reads = residual_reads(optimize_residual(body))
        assert reads == {"x", "y"}

    def test_dead_reads_not_reported(self):
        body = _body("a := read(x); b := read(y); write(z = a)")
        reads = residual_reads(optimize_residual(body))
        assert reads == {"x"}

    def test_parameterized_read_reported_structurally(self):
        body = _body("q := read(qty(@i)); write(qty(@i) = q - 1)", params=("i",))
        reads = residual_reads(body)
        assert any(isinstance(r, tuple) and r[0] == "qty" for r in reads)


# -- semantics preservation property ------------------------------------------------


@st.composite
def _straightline(draw):
    objs = ["x", "y", "z", "w"]
    n = draw(st.integers(1, 6))
    lines = []
    temps = []
    for i in range(n):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            name = f"t{i}"
            coeff = draw(st.integers(-3, 3))
            src = draw(st.sampled_from(objs + temps)) if temps else draw(st.sampled_from(objs))
            ref = f"read({src})" if src in objs else src
            lines.append(f"{name} := {ref} * {coeff} + {draw(st.integers(-5, 5))}")
            temps.append(name)
        elif kind == 1 and temps:
            target = draw(st.sampled_from(objs))
            lines.append(f"write({target} = {draw(st.sampled_from(temps))} + read({target}))")
        else:
            target = draw(st.sampled_from(objs))
            lines.append(f"write({target} = read({target}) + {draw(st.integers(-4, 4))})")
    if draw(st.booleans()) and temps:
        lines.append(f"print({draw(st.sampled_from(temps))})")
    return "; ".join(lines)


@settings(max_examples=80, deadline=None)
@given(
    src=_straightline(),
    db=st.fixed_dictionaries(
        {k: st.integers(-10, 10) for k in ("x", "y", "z", "w")}
    ),
)
def test_optimize_residual_preserves_semantics(src, db):
    body = _body(src)
    before = evaluate(Transaction("b", (), body), db)
    after = evaluate(Transaction("a", (), optimize_residual(body)), db)
    assert before.db == after.db and before.log == after.log


def test_optimized_tables_enable_assumption_41():
    """After optimization, T1's residual reads only x (Section 4's
    claim that Assumption 4.1 holds for T1/T2)."""
    table = build_symbolic_table(
        parse_transaction(
            """
            transaction T1() {
              xh := read(x); yh := read(y);
              if xh + yh < 10 then { write(x = xh + 1) } else { write(x = xh - 1) }
            }
            """
        )
    )
    for row in table.rows:
        assert residual_reads(row.residual) == {"x"}
