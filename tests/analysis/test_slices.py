"""Tests for LR-slices and observational equivalence (Section 3.2)."""

from repro.analysis.slices import (
    LocalRemotePartition,
    is_lr_slice,
    is_valid_global_treaty,
    observationally_equivalent,
    treaty_states_from_predicate,
)
from repro.lang.interp import EvalResult
from repro.lang.parser import parse_transaction

T3_SRC = """
transaction T3() {
  xh := read(x);
  if xh > 0 then { write(y = 1) } else { write(y = -1) }
}
"""

T4_SRC = """
transaction T4() {
  xh := read(x);
  yh := read(y);
  if yh = 1 then { write(z = (xh > 10)) } else { write(z = (xh > 100)) }
}
"""


class TestObservationalEquivalence:
    def test_equal_local_and_log(self):
        p = LocalRemotePartition.of(["y"])
        a = EvalResult(db={"y": 1, "x": 5}, log=(1,))
        b = EvalResult(db={"y": 1, "x": 99}, log=(1,))
        assert observationally_equivalent(a, b, p)  # x is remote; ignored

    def test_local_difference_detected(self):
        p = LocalRemotePartition.of(["y"])
        a = EvalResult(db={"y": 1}, log=())
        b = EvalResult(db={"y": 2}, log=())
        assert not observationally_equivalent(a, b, p)

    def test_log_difference_detected(self):
        p = LocalRemotePartition.of(["y"])
        a = EvalResult(db={"y": 1}, log=(1,))
        b = EvalResult(db={"y": 1}, log=(2,))
        assert not observationally_equivalent(a, b, p)

    def test_zero_default_normalization(self):
        p = LocalRemotePartition.of(["y"])
        a = EvalResult(db={}, log=())
        b = EvalResult(db={"y": 0}, log=())
        assert observationally_equivalent(a, b, p)


class TestT3Slices:
    def test_positive_remote_region_is_slice(self):
        """Section 3.2's motivating example: T3 behaves identically as
        long as x stays positive."""
        tx = parse_transaction(T3_SRC)
        assert is_lr_slice(
            tx,
            local_names=["y"],
            remote_names=["x"],
            local_vectors=[(0,), (1,), (-1,)],
            remote_vectors=[(1,), (5,), (10,), (100,)],
        )

    def test_sign_crossing_region_is_not_slice(self):
        tx = parse_transaction(T3_SRC)
        assert not is_lr_slice(
            tx,
            local_names=["y"],
            remote_names=["x"],
            local_vectors=[(0,)],
            remote_vectors=[(-1,), (1,)],
        )


class TestExample35:
    """The paper's Example 3.5: LR-slices for T4 (y local, x remote)."""

    def _tx(self):
        return parse_transaction(T4_SRC)

    def test_slice_one(self):
        assert is_lr_slice(
            self._tx(), ["y", "z"], ["x"],
            [(1, z) for z in (0, 1)], [(11,), (12,), (13,)],
        )

    def test_slice_two(self):
        assert is_lr_slice(
            self._tx(), ["y", "z"], ["x"],
            [(1, z) for z in (0, 1)], [(11,), (12,), (13,), (14,)],
        )

    def test_slice_three(self):
        assert is_lr_slice(
            self._tx(), ["y", "z"], ["x"],
            [(y, z) for y in (2, 3, 4) for z in (0, 1)],
            [(0,), (1,), (2,), (3,)],
        )

    def test_crossing_ten_is_not_slice_when_y_is_1(self):
        assert not is_lr_slice(
            self._tx(), ["y", "z"], ["x"],
            [(1, 0)], [(10,), (11,)],
        )

    def test_crossing_hundred_ok_when_y_is_1(self):
        """When y = 1 only the 10-boundary matters."""
        assert is_lr_slice(
            self._tx(), ["y", "z"], ["x"],
            [(1, 0)], [(99,), (100,), (101,), (150,)],
        )


class TestValidGlobalTreaty:
    def test_product_form_treaty_is_valid(self):
        """A treaty defined by independent local predicates satisfies
        Definition 3.7 (the essence of Lemma 4.2)."""
        t3 = parse_transaction(T3_SRC)
        states = treaty_states_from_predicate(
            ["x", "y"],
            {"x": range(1, 6), "y": range(-1, 2)},
            lambda db: db["x"] >= 1,  # local-only condition on x's site
        )
        assert is_valid_global_treaty([(t3, ["y"])], states)

    def test_entangled_treaty_is_invalid(self):
        """A non-product treaty like x = y fails: Definition 3.7 takes
        independent projections of L and R, and recombinations leave
        the intended set."""
        tx = parse_transaction(
            """
            transaction E() {
              xh := read(x);
              if xh > 0 then { write(y = 1) } else { write(y = -1) }
            }
            """
        )
        states = [{"x": -1, "y": -1}, {"x": 1, "y": 1}]  # "x = y" treaty
        assert not is_valid_global_treaty([(tx, ["y"])], states)
