"""Tests for symbolic table construction (Section 2.3, Figures 4 & 7).

The central soundness property (tested both on the paper's examples
and property-based): for every database D, the unique matching row's
residual produces exactly the same final database and log as the full
transaction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.symbolic import (
    AnalysisError,
    build_symbolic_table,
    rows_are_exclusive,
)
from repro.lang.ast import Transaction
from repro.lang.interp import evaluate
from repro.lang.parser import parse_transaction

T1_SRC = """
transaction T1() {
  xh := read(x);
  yh := read(y);
  if xh + yh < 10 then { write(x = xh + 1) } else { write(x = xh - 1) }
}
"""

T2_SRC = """
transaction T2() {
  xh := read(x);
  yh := read(y);
  if xh + yh < 20 then { write(y = yh + 1) } else { write(y = yh - 1) }
}
"""


def _soundness_check(tx, db, params=None):
    table = build_symbolic_table(tx)
    row = table.lookup(lambda n: db.get(n, 0), params=params)
    full = evaluate(tx, db, params=params)
    partial = evaluate(Transaction("partial", tx.params, row.residual), db, params=params)
    assert full.db == partial.db
    assert full.log == partial.log


class TestFigure4:
    def test_t1_has_two_rows(self):
        table = build_symbolic_table(parse_transaction(T1_SRC))
        assert len(table) == 2
        guards = {row.guard.pretty() for row in table.rows}
        assert guards == {"(x + y) < 10", "(x + y) >= 10"}

    def test_t1_residuals_are_compact(self):
        """Figure 4a shows w(x = r(x) + 1): the dead read of y is gone."""
        table = build_symbolic_table(parse_transaction(T1_SRC))
        for row in table.rows:
            rendered = row.residual.pretty()
            assert "read(y)" not in rendered

    def test_t2_guards(self):
        table = build_symbolic_table(parse_transaction(T2_SRC))
        guards = {row.guard.pretty() for row in table.rows}
        assert guards == {"(x + y) < 20", "(x + y) >= 20"}

    @pytest.mark.parametrize("vx", [-5, 0, 4, 5, 9, 10, 30])
    @pytest.mark.parametrize("vy", [-3, 0, 6, 15])
    def test_t1_soundness_grid(self, vx, vy):
        _soundness_check(parse_transaction(T1_SRC), {"x": vx, "y": vy})

    def test_rows_partition_databases(self):
        table = build_symbolic_table(parse_transaction(T1_SRC))
        dbs = [{"x": a, "y": b} for a in range(-3, 15, 2) for b in range(-3, 15, 3)]
        assert rows_are_exclusive(table, dbs)


class TestTransactionShapes:
    def test_straightline_single_row(self):
        tx = parse_transaction("xh := read(x); write(y = xh * 2); print(xh)")
        table = build_symbolic_table(tx)
        assert len(table) == 1
        assert table.rows[0].guard.pretty() == "true"

    def test_nested_conditionals(self):
        tx = parse_transaction(
            """
            a := read(x);
            if a < 0 then {
              if a < -10 then { write(y = 1) } else { write(y = 2) }
            } else { write(y = 3) }
            """
        )
        table = build_symbolic_table(tx)
        assert len(table) == 3
        for vx in (-20, -10, -5, 0, 5):
            _soundness_check(tx, {"x": vx})

    def test_contradictory_path_pruned(self):
        tx = parse_transaction(
            """
            a := read(x);
            if a < 0 then {
              if a > 5 then { write(y = 1) } else { write(y = 2) }
            } else { skip }
            """
        )
        table = build_symbolic_table(tx)
        # a < 0 and a > 5 is impossible; only 2 rows survive.
        assert len(table) == 2

    def test_write_then_branch_on_written_value(self):
        """Backward substitution through a write (rule 6)."""
        tx = parse_transaction(
            """
            write(x = read(x) + 5);
            b := read(x);
            if b < 10 then { write(y = 1) } else { write(y = 2) }
            """
        )
        build_symbolic_table(tx)
        # Guards must be over the *initial* x: x + 5 < 10 i.e. x < 5.
        for vx in (0, 4, 5, 6, 100):
            _soundness_check(tx, {"x": vx})

    def test_print_guard_insensitive(self):
        tx = parse_transaction("print(read(x)); write(y = 1)")
        table = build_symbolic_table(tx)
        assert len(table) == 1

    def test_t4_boolean_write(self):
        """Figure 8b's T4: boolean store desugars and analyzes."""
        tx = parse_transaction(
            """
            transaction T4() {
              xh := read(x);
              yh := read(y);
              if yh = 1 then { write(z = (xh > 10)) }
              else { write(z = (xh > 100)) }
            }
            """
        )
        table = build_symbolic_table(tx)
        assert len(table) == 4
        for vx in (5, 10, 11, 100, 101):
            for vy in (0, 1):
                _soundness_check(tx, {"x": vx, "y": vy})

    def test_uninitialized_temp_detected(self):
        tx = parse_transaction("if ghost < 1 then { write(x = 1) } else { skip }")
        with pytest.raises(AnalysisError):
            build_symbolic_table(tx)


class TestParameterizedTables:
    def test_param_guard(self):
        tx = parse_transaction(
            "transaction Buy(i) { q := read(qty(@i)); "
            "if q > 1 then { write(qty(@i) = q - 1) } else { write(qty(@i) = 9) } }"
        )
        table = build_symbolic_table(tx)
        assert len(table) == 2
        db = {"qty[3]": 5}
        row = table.lookup(lambda n: db.get(n, 0), params={"i": 3})
        assert "> 1" in row.guard.pretty()

    @settings(max_examples=40)
    @given(q=st.integers(-2, 12), item=st.integers(0, 4))
    def test_param_soundness(self, q, item):
        tx = parse_transaction(
            "transaction Buy(i) { q := read(qty(@i)); "
            "if q > 1 then { write(qty(@i) = q - 1) } else { write(qty(@i) = 9) } }"
        )
        _soundness_check(tx, {f"qty[{item}]": q}, params={"i": item})


class TestAliasing:
    ALIAS_SRC = """
    transaction T(a, b) {
      write(q(@a) = 5);
      v := read(q(@b));
      if v < 3 then { write(out = 1) } else { write(out = 2) }
    }
    """

    def test_alias_case_split(self):
        """Writing q(@a) then branching on q(@b) needs an a=b split."""
        tx = parse_transaction(self.ALIAS_SRC)
        table = build_symbolic_table(tx)
        # 2 branches x 2 alias cases, minus the pruned (a=b and 5<3) case.
        assert len(table) == 3

    @settings(max_examples=50)
    @given(
        a=st.integers(0, 2),
        b=st.integers(0, 2),
        q=st.lists(st.integers(-5, 8), min_size=3, max_size=3),
    )
    def test_alias_soundness(self, a, b, q):
        tx = parse_transaction(self.ALIAS_SRC)
        db = {f"q[{k}]": v for k, v in enumerate(q)}
        _soundness_check(tx, db, params={"a": a, "b": b})

    def test_distinct_assumption_removes_split(self):
        src = self.ALIAS_SRC.replace("T(a, b)", "T(a, b) distinct(a, b)")
        tx = parse_transaction(src)
        table = build_symbolic_table(tx)
        assert len(table) == 2  # no alias split needed


# -- randomized program soundness ------------------------------------------------


@st.composite
def _random_transaction(draw):
    """Small random L transactions over objects x, y, z."""
    objs = ["x", "y", "z"]
    depth = draw(st.integers(1, 3))

    def gen_expr():
        kind = draw(st.integers(0, 3))
        if kind == 0:
            return str(draw(st.integers(-9, 9)))
        if kind == 1:
            return f"read({draw(st.sampled_from(objs))})"
        if kind == 2:
            return f"(read({draw(st.sampled_from(objs))}) + {draw(st.integers(-5, 5))})"
        return f"(read({draw(st.sampled_from(objs))}) * {draw(st.integers(-3, 3))})"

    def gen_stmt(d):
        kind = draw(st.integers(0, 3 if d > 0 else 2))
        if kind == 0:
            return f"write({draw(st.sampled_from(objs))} = {gen_expr()})"
        if kind == 1:
            return f"print({gen_expr()})"
        if kind == 2:
            return f"write({draw(st.sampled_from(objs))} = {gen_expr()})"
        cond = f"{gen_expr()} {draw(st.sampled_from(['<', '<=', '=']))} {gen_expr()}"
        return (
            f"if {cond} then {{ {gen_block(d - 1)} }} "
            f"else {{ {gen_block(d - 1)} }}"
        )

    def gen_block(d):
        n = draw(st.integers(1, 2))
        return "; ".join(gen_stmt(d) for _ in range(n))

    return gen_block(depth)


@settings(max_examples=60, deadline=None)
@given(
    src=_random_transaction(),
    vx=st.integers(-10, 10),
    vy=st.integers(-10, 10),
    vz=st.integers(-10, 10),
)
def test_random_program_soundness(src, vx, vy, vz):
    """PROPERTY (Section 2.2): Eval(T, D) == Eval(matched residual, D)."""
    tx = parse_transaction(src)
    _soundness_check(tx, {"x": vx, "y": vy, "z": vz})
