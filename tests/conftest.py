"""Test-suite configuration: hypothesis profiles.

The default profile keeps the property suites fast on the PR critical
path; the nightly workflow selects the deeper budget with
``pytest --hypothesis-profile=nightly``, and the CI fuzz-smoke job
selects the time-boxed budget with
``pytest --hypothesis-profile=fuzz-smoke``.
"""

from hypothesis import settings

settings.register_profile("nightly", max_examples=500, deadline=None)
settings.register_profile("fuzz-smoke", max_examples=25, deadline=None)
