"""Test-suite configuration: hypothesis profiles.

The default profile keeps the property suites fast on the PR critical
path; the nightly workflow selects the deeper budget with
``pytest --hypothesis-profile=nightly``.
"""

from hypothesis import settings

settings.register_profile("nightly", max_examples=500, deadline=None)
