"""The Hypothesis workload fuzzer and its regression corpus.

Random L++ programs with linear numeric invariants run through the
full protocol stack (real parser, Appendix B transform, treaty
generator, validate-mode cluster) and held to the serial oracle of
:mod:`repro.fuzz.oracle`: strictly serial final state and sync
broadcasts, print logs per the case's probe contract (snapshot for
classifier-FREE probes, strictly serial under ``pinned_probes``).

A failing case is written to ``corpus/pending/`` on every shrink
attempt; Hypothesis replays the minimal example last, so after a red
run the pending file holds the minimal reproducer, ready to be
promoted into ``corpus/`` where the replay test keeps it green
forever.
"""

import random
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

import repro.fuzz.oracle as oracle_mod
from repro.fuzz import (
    FuzzCase,
    FuzzDivergence,
    FuzzSpec,
    ArraySpec,
    FamilySpec,
    fingerprint,
    load_corpus,
    random_case,
    run_case,
    save_case,
)
from repro.fuzz.strategies import fuzz_cases
from repro.workloads import WorkloadSpecError

CORPUS_DIR = Path(__file__).parent / "corpus"
PENDING_DIR = CORPUS_DIR / "pending"


# -- the fuzzer ---------------------------------------------------------------


@given(fuzz_cases())
@settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_fuzzed_workloads_are_serially_equivalent(case):
    """Every generated case passes the serial oracle (final state,
    sync broadcasts, and the selected print contract), with H1/H2
    asserted by the validate-mode cluster at every treaty install."""
    try:
        run_case(case)
    except FuzzDivergence as exc:
        save_case(exc.case, PENDING_DIR, "pending-failure")
        raise


# -- the committed regression corpus ------------------------------------------


CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_committed():
    """The seed corpus ships with the repo (a minimal-reproducer pair
    for the probe contracts plus coverage-picked random cases)."""
    assert len(CORPUS) >= 7
    names = [name for name, _ in CORPUS]
    assert "probe-snapshot-minimal" in names
    assert "probe-pinned-minimal" in names


@pytest.mark.parametrize(
    "name,case", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_corpus_replays_clean(name, case):
    """Once-found divergences can never quietly return: every corpus
    case replays through the oracle on every run."""
    run_case(case)


def test_corpus_round_trip():
    """Persisted cases reload to the exact cases they encode."""
    for name, case in CORPUS:
        reloaded = load_corpus(CORPUS_DIR)
        assert dict(reloaded)[name] == case
        break  # one file proves the path; fingerprints cover the rest
    fingerprints = {fingerprint(case) for _, case in CORPUS}
    assert len(fingerprints) == len(CORPUS)


# -- the probe contracts (the divergence the fuzzer found) --------------------


def _minimal_cases():
    by_name = dict(CORPUS)
    return by_name["probe-snapshot-minimal"], by_name["probe-pinned-minimal"]


def test_unpinned_probe_prints_the_snapshot_value():
    """The found divergence, pinned down as the snapshot contract: a
    buy commits locally at site 0, then a classifier-FREE probe at
    site 1 prints the value of *its* snapshot -- the initial 5, not
    the serial 3 -- and no negotiation runs."""
    case, _ = _minimal_cases()
    workload = oracle_mod.FuzzWorkload(fuzz=case.spec)
    cluster = oracle_mod.build_cluster(workload)
    logs = [cluster.submit(*workload.resolve(r)).log for r in case.schedule]
    assert logs == [(), (5,)]
    assert cluster.stats.negotiations == 0
    run_case(case)  # and that is exactly what the oracle demands


def test_pinned_probe_forces_the_writer_to_sync():
    """Same program under ``pinned_probes``: the probe's ground rows
    pin the slots (Appendix C.3 demarcation), the buy pays a
    negotiation for its write, and the probe prints the serial 3."""
    _, case = _minimal_cases()
    workload = oracle_mod.FuzzWorkload(fuzz=case.spec)
    cluster = oracle_mod.build_cluster(workload)
    logs = [cluster.submit(*workload.resolve(r)).log for r in case.schedule]
    assert logs == [(), (3,)]
    assert cluster.stats.negotiations == 1
    run_case(case)


# -- oracle sensitivity (the oracle is not vacuous) ---------------------------


def test_oracle_catches_a_corrupted_print(monkeypatch):
    """A protocol that returned wrong print values would be rejected:
    tamper every non-empty log and the minimal probe case diverges."""
    real_build = oracle_mod.build_cluster

    def tampering_build(workload):
        cluster = real_build(workload)
        orig = cluster.submit

        def submit(tx_name, params=None):
            result = orig(tx_name, params)
            if result.log:
                result.log = tuple(v + 1 for v in result.log)
            return result

        cluster.submit = submit
        return cluster

    monkeypatch.setattr(oracle_mod, "build_cluster", tampering_build)
    case, _ = _minimal_cases()
    with pytest.raises(FuzzDivergence, match="log divergence"):
        run_case(case)


def test_oracle_catches_a_corrupted_store(monkeypatch):
    """A lost update is rejected -- by the oracle's sync/final-state
    checks or by the validate-mode kernel's own agreement asserts,
    whichever observes the corrupted object first."""
    real_build = oracle_mod.build_cluster

    def tampering_build(workload):
        cluster = real_build(workload)
        orig = cluster.submit
        count = {"n": 0}

        def submit(tx_name, params=None):
            count["n"] += 1
            if count["n"] == 5:
                store = cluster.sites[0].engine.store
                store.data[sorted(store.data)[0]] += 7
            return orig(tx_name, params)

        cluster.submit = submit
        return cluster

    monkeypatch.setattr(oracle_mod, "build_cluster", tampering_build)
    corrupted = random_case(random.Random(2))
    with pytest.raises(Exception):
        run_case(corrupted)


# -- generator diversity ------------------------------------------------------


def test_generator_diversity_scales_with_profile():
    """The nightly budget must explore >= 200 distinct programs (the
    acceptance floor); whatever the active profile's budget is, a
    same-size seed sweep produces that many distinct spec
    fingerprints (the schedule is excluded -- this counts *programs
    and invariants*, not shuffles of one program)."""
    budget = settings().max_examples
    specs = {
        fingerprint(
            FuzzCase(spec=random_case(random.Random(seed)).spec, schedule=())
        )
        for seed in range(budget)
    }
    assert len(specs) >= min(budget, 200)
    assert len(specs) >= 0.5 * budget


# -- spec validation ----------------------------------------------------------


def _spec(**overrides):
    base = dict(
        num_sites=2,
        arrays=(ArraySpec("a0", 3, 5),),
        families=(FamilySpec("T0", "buy", "a0"),),
    )
    base.update(overrides)
    return FuzzSpec(**base)


@pytest.mark.parametrize(
    "spec",
    [
        _spec(num_sites=1),
        _spec(arrays=()),
        _spec(families=()),
        _spec(arrays=(ArraySpec("a0", 0, 5),)),
        _spec(arrays=(ArraySpec("a0", 3, -1),)),
        _spec(arrays=(ArraySpec("a0", 3, 5), ArraySpec("a0", 2, 4))),
        _spec(families=(FamilySpec("T0", "steal", "a0"),)),
        _spec(families=(FamilySpec("T0", "buy", "missing"),)),
        _spec(families=(FamilySpec("T0", "buy", "a0", delta=0),)),
        _spec(
            arrays=(ArraySpec("a0", 1, 5),),
            families=(FamilySpec("T0", "transfer", "a0"),),
        ),
        _spec(
            families=(
                FamilySpec("T0", "buy", "a0"),
                FamilySpec("T0", "pay", "a0"),
            )
        ),
    ],
    ids=[
        "one-site",
        "no-arrays",
        "no-families",
        "zero-items",
        "negative-initial",
        "duplicate-array",
        "unknown-kind",
        "unknown-array",
        "zero-delta",
        "transfer-needs-two-items",
        "duplicate-family",
    ],
)
def test_bad_specs_fail_at_construction(spec):
    with pytest.raises(WorkloadSpecError):
        oracle_mod.FuzzWorkload(fuzz=spec)
