"""Tests for the L interpreter (Definition 2.1 semantics)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang.interp import EvalResult, InterpError, evaluate
from repro.lang.parser import parse_transaction

T1_SRC = """
transaction T1() {
  xh := read(x);
  yh := read(y);
  if xh + yh < 10 then { write(x = xh + 1) } else { write(x = xh - 1) }
}
"""


class TestBasics:
    def test_t1_then_branch(self):
        tx = parse_transaction(T1_SRC)
        out = evaluate(tx, {"x": 3, "y": 4})
        assert out.db["x"] == 4

    def test_t1_else_branch(self):
        tx = parse_transaction(T1_SRC)
        out = evaluate(tx, {"x": 6, "y": 8})
        assert out.db["x"] == 5

    def test_input_not_mutated(self):
        tx = parse_transaction(T1_SRC)
        db = {"x": 3, "y": 4}
        evaluate(tx, db)
        assert db == {"x": 3, "y": 4}

    def test_missing_objects_default_to_zero(self):
        tx = parse_transaction("t := read(nowhere); write(out = t + 1)")
        out = evaluate(tx, {})
        assert out.db["out"] == 1

    def test_log_order(self):
        tx = parse_transaction("print(1); print(2); print(3)")
        assert evaluate(tx, {}).log == (1, 2, 3)

    def test_parameters(self):
        tx = parse_transaction("transaction T(p) { write(x = @p * 2) }")
        assert evaluate(tx, {}, params={"p": 21}).db["x"] == 42

    def test_missing_parameter_raises(self):
        tx = parse_transaction("transaction T(p) { write(x = @p) }")
        with pytest.raises(InterpError):
            evaluate(tx, {})

    def test_unbound_temp_raises(self):
        tx = parse_transaction("write(x = ghost)")
        with pytest.raises(InterpError):
            evaluate(tx, {})

    def test_array_access(self):
        tx = parse_transaction(
            "transaction T(i) { q := read(a(@i)); write(a(@i) = q + 1) }"
        )
        out = evaluate(tx, {"a[4]": 10}, params={"i": 4})
        assert out.db["a[4]"] == 11

    def test_computed_array_index(self):
        tx = parse_transaction("i := 1 + 2; write(a(i) = 9)")
        assert evaluate(tx, {}).db["a[3]"] == 9

    def test_foreach_requires_bound(self):
        tx = parse_transaction("foreach i in a { write(a(i) = i) }")
        with pytest.raises(InterpError):
            evaluate(tx, {})

    def test_foreach_with_bound(self):
        tx = parse_transaction("foreach i in a { write(a(i) = i * 10) }")
        out = evaluate(tx, {}, arrays={"a": (4,)})
        assert out.db == {"a[0]": 0, "a[1]": 10, "a[2]": 20, "a[3]": 30}

    def test_boolean_write_value(self):
        tx = parse_transaction("xh := read(x); write(z = (xh > 10))")
        assert evaluate(tx, {"x": 11}).db["z"] == 1
        assert evaluate(tx, {"x": 9}).db["z"] == 0

    def test_long_sequence_no_recursion_error(self):
        body = "; ".join(f"write(x = {i})" for i in range(5000))
        tx = parse_transaction(body)
        assert evaluate(tx, {}).db["x"] == 4999


class TestDeterminism:
    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_t1_deterministic(self, vx, vy):
        tx = parse_transaction(T1_SRC)
        a = evaluate(tx, {"x": vx, "y": vy})
        b = evaluate(tx, {"x": vx, "y": vy})
        assert a == b

    def test_observational_equality_helper(self):
        a = EvalResult(db={"x": 1}, log=(1,))
        b = EvalResult(db={"x": 1}, log=(1,))
        c = EvalResult(db={"x": 2}, log=(1,))
        assert a.observationally_equal(b)
        assert not a.observationally_equal(c)
