"""Tests for the L/L++ lexer and parser."""

import pytest

from repro.lang.ast import (
    ABin,
    AConst,
    AParam,
    ARead,
    ArrayRef,
    Assign,
    BCmp,
    ForEach,
    GroundRef,
    If,
    Print,
    Seq,
    Skip,
    Write,
)
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse_program, parse_transaction
from repro.lang.pretty import pretty_transaction


class TestLexer:
    def test_keywords_and_names(self):
        tokens = tokenize("if foo then")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds == [("keyword", "if"), ("name", "foo"), ("keyword", "then")]

    def test_two_char_operators(self):
        tokens = tokenize("a := b <= c >= d != e")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == [":=", "<=", ">=", "!="]

    def test_integers(self):
        tokens = tokenize("123 0 7")
        assert [t.text for t in tokens if t.kind == "int"] == ["123", "0", "7"]

    def test_comments_skipped(self):
        tokens = tokenize("x # a comment\ny // other\nz")
        names = [t.text for t in tokens if t.kind == "name"]
        assert names == ["x", "y", "z"]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParser:
    def test_figure3_t1(self):
        tx = parse_transaction(
            """
            transaction T1() {
              xh := read(x);
              yh := read(y);
              if xh + yh < 10 then { write(x = xh + 1) }
              else { write(x = xh - 1) }
            }
            """
        )
        assert tx.name == "T1"
        assert isinstance(tx.body, Seq)
        first = tx.body.first
        assert first == Assign("xh", ARead(GroundRef("x")))

    def test_bare_body(self):
        tx = parse_transaction("write(x = 1)")
        assert tx.body == Write(GroundRef("x"), AConst(1))

    def test_param_recognition(self):
        tx = parse_transaction(
            "transaction T(p) { q := p + 1; write(x = @p) }"
        )
        assign = tx.body.first
        assert assign == Assign("q", ABin("+", AParam("p"), AConst(1)))
        write = tx.body.second
        assert write == Write(GroundRef("x"), AParam("p"))

    def test_array_access(self):
        tx = parse_transaction(
            "transaction T(i) { q := read(a(@i)); write(a(@i, 2) = q) }"
        )
        assign = tx.body.first
        assert assign.expr == ARead(ArrayRef("a", (AParam("i"),)))
        write = tx.body.second
        assert write.ref == ArrayRef("a", (AParam("i"), AConst(2)))

    def test_boolean_write_desugars(self):
        # Figure 8b: write(z = (x > 10)) becomes a conditional.
        tx = parse_transaction("transaction T4() { xh := read(x); write(z = (xh > 10)) }")
        node = tx.body.second
        assert isinstance(node, If)
        assert node.then_branch == Write(GroundRef("z"), AConst(1))
        assert node.else_branch == Write(GroundRef("z"), AConst(0))

    def test_foreach(self):
        prog = parse_program(
            """
            array a[8]
            transaction T() { foreach i in a { write(a(i) = 0) } }
            """
        )
        assert prog.arrays == {"a": (8,)}
        body = prog.transactions["T"].body
        assert isinstance(body, ForEach)

    def test_print_statement(self):
        tx = parse_transaction("print(3 + 4)")
        assert tx.body == Print(ABin("+", AConst(3), AConst(4)))

    def test_skip(self):
        tx = parse_transaction("skip")
        assert tx.body == Skip()

    def test_operator_precedence(self):
        tx = parse_transaction("t := 1 + 2 * 3")
        expr = tx.body.expr
        assert expr == ABin("+", AConst(1), ABin("*", AConst(2), AConst(3)))

    def test_comparison_in_condition(self):
        tx = parse_transaction("if 1 + 2 <= 4 then { skip } else { skip }")
        assert isinstance(tx.body.cond, BCmp)

    def test_and_or_not(self):
        tx = parse_transaction(
            "if not (x < 1) and (y < 2 or z < 3) then { skip } else { skip }",
        )
        assert isinstance(tx.body, If)

    def test_distinct_clause(self):
        tx = parse_transaction(
            "transaction T(a, b) distinct(a, b) { write(q(@a) = 1); write(q(@b) = 2) }"
        )
        assert tx.assume_distinct == (("a", "b"),)

    def test_distinct_unknown_param_rejected(self):
        with pytest.raises(ParseError):
            parse_transaction("transaction T(a) distinct(a, b) { skip }")

    def test_missing_else_rejected(self):
        with pytest.raises(ParseError):
            parse_transaction("if x < 1 then { skip }")

    def test_arith_where_bool_expected(self):
        with pytest.raises(ParseError):
            parse_transaction("if x + 1 then { skip } else { skip }")

    def test_bool_where_arith_expected(self):
        with pytest.raises(ParseError):
            parse_transaction("t := (x < 1) + 2")

    def test_duplicate_transaction_rejected(self):
        with pytest.raises(ValueError):
            parse_program(
                "transaction T() { skip } transaction T() { skip }"
            )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "transaction T1() { xh := read(x); if xh < 10 then { write(x = xh + 1) } else { write(x = xh - 1) } }",
            "transaction T(p) { q := read(a(@p)); write(a(@p) = q - 1) }",
            "transaction T() { print(read(x)); print(read(y) * 2) }",
            "transaction T(a, b) distinct(a, b) { write(q(@a) = read(q(@b))) }",
        ],
    )
    def test_pretty_parse_roundtrip(self, source):
        tx = parse_transaction(source)
        again = parse_transaction(pretty_transaction(tx))
        assert again == tx
