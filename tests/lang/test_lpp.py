"""Tests for L++ desugaring (Appendix A encodings)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.interp import evaluate
from repro.lang.lpp import (
    DesugarError,
    desugar_transaction,
    is_core_l,
)
from repro.lang.parser import parse_program, parse_transaction


def _eval_all(tx, db, params=None, arrays=None):
    return evaluate(tx, db, params=params, arrays=arrays)


class TestForeachUnrolling:
    def test_unroll_matches_interpretation(self):
        prog = parse_program(
            """
            array a[5]
            transaction T() { foreach i in a { write(a(i) = i + 100) } }
            """
        )
        tx = prog.transactions["T"]
        unrolled = desugar_transaction(tx, prog.arrays, mode="expand")
        direct = _eval_all(tx, {}, arrays=prog.arrays)
        lowered = _eval_all(unrolled, {})
        assert direct.db == lowered.db

    def test_unroll_undeclared_array(self):
        tx = parse_transaction("foreach i in nope { skip }")
        with pytest.raises(DesugarError):
            desugar_transaction(tx, {}, mode="expand")

    def test_loop_var_reassignment_rejected(self):
        tx = parse_transaction("foreach i in a { i := 0 }")
        with pytest.raises(DesugarError):
            desugar_transaction(tx, {"a": (3,)}, mode="expand")

    def test_nested_foreach(self):
        prog = parse_program(
            """
            array a[2]
            array b[3]
            transaction T() {
              foreach i in a { foreach j in b { write(m(i, j) = i * 10 + j) } }
            }
            """
        )
        tx = prog.transactions["T"]
        lowered = desugar_transaction(tx, prog.arrays, mode="expand")
        out = _eval_all(lowered, {})
        assert out.db["m[1,2]"] == 12
        assert len(out.db) == 6


class TestDynamicAccessExpansion:
    def test_dynamic_read_expands_to_core_l(self):
        prog = parse_program(
            """
            array a[4]
            transaction T() { i := read(sel); v := read(a(i)); write(out = v) }
            """
        )
        tx = desugar_transaction(prog.transactions["T"], prog.arrays, mode="expand")
        assert is_core_l(tx.body)
        out = _eval_all(tx, {"sel": 2, "a[2]": 99})
        assert out.db["out"] == 99

    def test_dynamic_write_expands(self):
        prog = parse_program(
            """
            array a[4]
            transaction T() { i := read(sel); write(a(i) = 7) }
            """
        )
        tx = desugar_transaction(prog.transactions["T"], prog.arrays, mode="expand")
        assert is_core_l(tx.body)
        out = _eval_all(tx, {"sel": 3})
        assert out.db["a[3]"] == 7

    def test_out_of_bounds_read_is_zero(self):
        prog = parse_program(
            "array a[2] transaction T() { i := read(sel); write(out = read(a(i))) }"
        )
        tx = desugar_transaction(prog.transactions["T"], prog.arrays, mode="expand")
        out = _eval_all(tx, {"sel": 9, "a[0]": 5, "a[1]": 6})
        assert out.db["out"] == 0

    def test_out_of_bounds_write_is_noop(self):
        prog = parse_program(
            "array a[2] transaction T() { i := read(sel); write(a(i) = 1) }"
        )
        tx = desugar_transaction(prog.transactions["T"], prog.arrays, mode="expand")
        out = _eval_all(tx, {"sel": 5})
        assert all(not k.startswith("a[") or out.db[k] == 0 for k in out.db)

    def test_write_value_evaluated_once(self):
        # The bound temp ensures reads in the value expression are not
        # duplicated per branch of the cascade.
        prog = parse_program(
            "array a[3] transaction T() { i := read(sel); write(a(i) = read(v) + 1) }"
        )
        tx = desugar_transaction(prog.transactions["T"], prog.arrays, mode="expand")
        out = _eval_all(tx, {"sel": 1, "v": 41})
        assert out.db["a[1]"] == 42

    def test_expansion_limit(self):
        prog = parse_program(
            "array big[100000] transaction T() { i := read(sel); write(big(i) = 1) }"
        )
        with pytest.raises(DesugarError):
            desugar_transaction(prog.transactions["T"], prog.arrays, mode="expand")


class TestParameterizedMode:
    def test_param_access_stays_compressed(self):
        tx = parse_transaction(
            "transaction T(i) { q := read(a(@i)); write(a(@i) = q - 1) }"
        )
        lowered = desugar_transaction(tx, {"a": (10,)}, mode="parameterized")
        assert lowered == tx  # already in compressed form

    def test_data_dependent_access_still_expands(self):
        prog = parse_program(
            "array a[3] transaction T() { i := read(sel); write(a(i) = 1) }"
        )
        tx = desugar_transaction(
            prog.transactions["T"], prog.arrays, mode="parameterized"
        )
        assert is_core_l(tx.body)

    def test_unknown_mode(self):
        tx = parse_transaction("skip")
        with pytest.raises(ValueError):
            desugar_transaction(tx, {}, mode="bogus")


def test_out_of_bounds_param_modes_differ_documented():
    """Boundary semantics: the expanded encoding bounds-checks (write
    outside the declared array is a no-op), while the compressed
    parameterized form writes the raw slot object.  In-bounds
    parameters are therefore a precondition of the compressed form;
    workload generators guarantee it by sampling from the declared
    domain."""
    prog = parse_program(
        "array a[4] transaction T(p) { write(a(@p) = 1) }"
    )
    tx = prog.transactions["T"]
    expanded = desugar_transaction(tx, prog.arrays, mode="expand")
    compressed = desugar_transaction(tx, prog.arrays, mode="parameterized")
    out_exp = evaluate(expanded, {}, params={"p": 9})
    out_cmp = evaluate(compressed, {}, params={"p": 9})
    assert "a[9]" not in out_exp.db or out_exp.db["a[9]"] == 0
    assert out_cmp.db["a[9]"] == 1


@settings(max_examples=30)
@given(
    sel=st.integers(0, 3),
    init=st.lists(st.integers(-10, 10), min_size=4, max_size=4),
)
def test_expand_equals_parameterized_semantics(sel, init):
    """Both lowering modes agree with direct interpretation for
    in-bounds parameters."""
    prog = parse_program(
        """
        array a[4]
        transaction T(p) {
          q := read(a(@p));
          if q < 0 then { write(a(@p) = 0) } else { write(a(@p) = q + 1) }
        }
        """
    )
    tx = prog.transactions["T"]
    db = {f"a[{k}]": v for k, v in enumerate(init)}
    direct = evaluate(tx, db, params={"p": sel})
    for mode in ("expand", "parameterized"):
        lowered = desugar_transaction(tx, prog.arrays, mode=mode)
        out = evaluate(lowered, db, params={"p": sel})
        assert out.db == direct.db and out.log == direct.log
