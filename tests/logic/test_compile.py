"""Compiled-check equivalence and cache-invalidation tests.

The compiled fast path (:mod:`repro.logic.compile`) must be
observationally identical to the interpreters it replaces --
``Formula.evaluate`` for guards and the per-clause loop for treaty
constraints -- on *every* environment, including the error behaviour
for unbound parameters.  Hypothesis generates random ASTs and
environments; the treaty-table tests pin the cache-invalidation
contract (a replaced treaty is recompiled, never served stale).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.compile import (
    compile_clause,
    compile_clauses,
    compile_formula,
    interpret_clauses,
)
from repro.logic.formula import And, BoolConst, Cmp, Formula, Not, Or
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.terms import (
    Add,
    Const,
    IndexedObjT,
    Mul,
    Neg,
    ObjT,
    ParamT,
    TempT,
)
from repro.treaty.table import LocalTreaty, TreatyTable

OBJ_NAMES = ("x", "y", "z")
PARAM_NAMES = ("p", "q")
TEMP_NAMES = ("u",)
CMP_OPS = ("<", "<=", "=", "!=", ">", ">=")


def make_getobj(salt: int):
    """A deterministic object-value function defined on *every* name
    (indexed references can ground to arbitrary array slots)."""

    def getobj(name: str) -> int:
        return (sum(name.encode()) * (salt + 3)) % 21 - 10

    return getobj


terms = st.recursive(
    st.one_of(
        st.integers(-20, 20).map(Const),
        st.sampled_from(OBJ_NAMES).map(ObjT),
        st.sampled_from(PARAM_NAMES).map(ParamT),
        st.sampled_from(TEMP_NAMES).map(TempT),
    ),
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda ab: Add(*ab)),
        st.tuples(children, children).map(lambda ab: Mul(*ab)),
        children.map(Neg),
        st.tuples(children).map(lambda ix: IndexedObjT("arr", ix)),
    ),
    max_leaves=8,
)

formulas: st.SearchStrategy[Formula] = st.recursive(
    st.one_of(
        st.booleans().map(BoolConst),
        st.tuples(st.sampled_from(CMP_OPS), terms, terms).map(
            lambda t: Cmp(t[0], t[1], t[2])
        ),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3).map(lambda fs: And(tuple(fs))),
        st.lists(children, max_size=3).map(lambda fs: Or(tuple(fs))),
        children.map(Not),
    ),
    max_leaves=12,
)

environments = st.tuples(
    st.integers(0, 7),
    st.fixed_dictionaries({name: st.integers(-15, 15) for name in PARAM_NAMES}),
    st.fixed_dictionaries({name: st.integers(-15, 15) for name in TEMP_NAMES}),
)

linear_constraints = st.builds(
    lambda coeffs, op, bound: LinearConstraint.make(
        LinearExpr.make({ObjT(name): c for name, c in coeffs.items()}), op, bound
    ),
    st.dictionaries(st.sampled_from(OBJ_NAMES), st.integers(-6, 6), max_size=3),
    st.sampled_from(("<", "<=", "=", ">", ">=")),
    st.integers(-30, 30),
)


class TestFormulaEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(formula=formulas, env=environments)
    def test_compiled_matches_interpreter(self, formula, env):
        salt, params, temps = env
        getobj = make_getobj(salt)
        expected = formula.evaluate(getobj, params=params, temps=temps)
        assert compile_formula(formula)(getobj, params, temps) == expected

    @settings(max_examples=100, deadline=None)
    @given(formula=formulas, salt=st.integers(0, 7))
    def test_unbound_names_raise_keyerror_like_interpreter(self, formula, salt):
        getobj = make_getobj(salt)
        try:
            expected = formula.evaluate(getobj)
        except KeyError:
            with pytest.raises(KeyError):
                compile_formula(formula)(getobj)
        else:
            assert compile_formula(formula)(getobj) == expected

    def test_compilation_is_memoized(self):
        f = Cmp("<=", ObjT("x"), Const(5))
        assert compile_formula(f) is compile_formula(Cmp("<=", ObjT("x"), Const(5)))

    def test_deep_ast_falls_back_to_interpreter(self):
        # A ~400-deep term chain exceeds CPython's nested-parenthesis
        # limit in compile(); the fast path must degrade to the
        # interpreter, never crash where Formula.evaluate works.
        term = ObjT("x0")
        for i in range(1, 400):
            term = Add(term, ObjT(f"x{i}"))
        formula = Cmp("<=", term, Const(10**6))
        getobj = make_getobj(0)
        assert compile_formula(formula)(getobj) == formula.evaluate(getobj)


class TestClauseEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(cons=st.lists(linear_constraints, max_size=5), salt=st.integers(0, 7))
    def test_conjunction_matches_interpreter(self, cons, salt):
        getobj = make_getobj(salt)
        expected = interpret_clauses(cons, getobj)
        assert compile_clauses(cons)(getobj) == expected
        assert all(compile_clause(c)(getobj) for c in cons) == expected

    @settings(max_examples=100, deadline=None)
    @given(con=linear_constraints, salt=st.integers(0, 7))
    def test_clause_matches_satisfied_by(self, con, salt):
        getobj = make_getobj(salt)
        assignment = {var: getobj(var.name) for var in con.variables()}
        assert compile_clause(con)(getobj) == con.satisfied_by(assignment)

    def test_large_conjunction_chunks(self):
        # Past the chunking threshold the check is split across several
        # code objects; semantics must not change.
        cons = [
            LinearConstraint.make(LinearExpr.variable(ObjT(f"o{i}")), "<=", 100)
            for i in range(200)
        ]
        check = compile_clauses(cons)
        assert check(lambda name: 7) is True
        assert check(lambda name: 101) is False


def le_clause(name: str, bound: int) -> LinearConstraint:
    return LinearConstraint.make(LinearExpr.variable(ObjT(name)), "<=", bound)


class TestCacheInvalidation:
    def make_table(self) -> TreatyTable:
        return TreatyTable(
            global_treaty=None,
            templates=None,
            configuration=None,
            locals={0: LocalTreaty(site=0, constraints=[le_clause("x", 5)])},
        )

    def test_check_local_recompiled_after_replace(self):
        table = self.make_table()
        getobj = {"x": 3}.__getitem__
        assert table.check_local(0, getobj) is True
        cached = table._compiled_checks[0]
        table.install_local(0, LocalTreaty(site=0, constraints=[le_clause("x", 2)]))
        assert 0 not in table._compiled_checks
        # The tighter replacement treaty governs the next check.
        assert table.check_local(0, getobj) is False
        assert table._compiled_checks[0] is not cached

    def test_factor_index_rebuilt_after_replace(self):
        table = self.make_table()
        assert table.sites_for_objects(["x"]) == {0}
        assert table.sites_for_objects(["y"]) == set()
        table.install_local(0, LocalTreaty(site=0, constraints=[le_clause("y", 9)]))
        assert table.sites_for_objects(["x"]) == set()
        assert table.sites_for_objects(["y"]) == {0}

    def test_precompile_warms_every_site(self):
        table = self.make_table()
        table.locals[1] = LocalTreaty(site=1, constraints=[le_clause("y", 1)])
        assert table.precompile() == 2
        assert set(table._compiled_checks) == {0, 1}

    def test_local_treaty_compiled_check_is_cached(self):
        treaty = LocalTreaty(site=0, constraints=[le_clause("x", 5)])
        assert treaty.compiled_check() is treaty.compiled_check()
