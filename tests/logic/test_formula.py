"""Unit and property tests for the formula layer (repro.logic.formula)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.formula import (
    And,
    Cmp,
    FalseF,
    Not,
    Or,
    TrueF,
    conj,
    conjuncts,
    disj,
)
from repro.logic.terms import Const, ObjT, ParamT


def getobj_from(db):
    return lambda name: db.get(name, 0)


x = ObjT("x")
y = ObjT("y")


class TestComparisons:
    @pytest.mark.parametrize(
        "op,l,r,expected",
        [
            ("<", 1, 2, True),
            ("<", 2, 2, False),
            ("<=", 2, 2, True),
            ("=", 3, 3, True),
            ("=", 3, 4, False),
            ("!=", 3, 4, True),
            (">", 5, 4, True),
            (">=", 4, 4, True),
        ],
    )
    def test_semantics(self, op, l, r, expected):
        assert Cmp(op, Const(l), Const(r)).evaluate(getobj_from({})) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Cmp("<>", Const(0), Const(0))

    def test_negated_is_complement(self):
        atom = Cmp("<", x, Const(10))
        for vx in range(5, 15):
            lookup = getobj_from({"x": vx})
            assert atom.negated().evaluate(lookup) is not atom.evaluate(lookup)

    def test_params_in_comparison(self):
        atom = Cmp("<=", ParamT("p"), x)
        assert atom.evaluate(getobj_from({"x": 4}), params={"p": 4}) is True


class TestConnectives:
    def test_and_or_not(self):
        f = And((Cmp("<", x, Const(5)), Not(Cmp("=", y, Const(0)))))
        assert f.evaluate(getobj_from({"x": 1, "y": 2})) is True
        assert f.evaluate(getobj_from({"x": 1, "y": 0})) is False

    def test_empty_and_is_true(self):
        assert And(()).evaluate(getobj_from({})) is True

    def test_empty_or_is_false(self):
        assert Or(()).evaluate(getobj_from({})) is False

    def test_conj_short_circuits_false(self):
        assert conj([TrueF, FalseF, Cmp("<", x, y)]) == FalseF

    def test_conj_drops_true(self):
        out = conj([TrueF, Cmp("<", x, y)])
        assert out == Cmp("<", x, y)

    def test_conj_flattens(self):
        inner = conj([Cmp("<", x, y), Cmp("<", y, Const(3))])
        out = conj([inner, Cmp("=", x, Const(0))])
        assert isinstance(out, And)
        assert len(out.operands) == 3

    def test_disj_short_circuits_true(self):
        assert disj([FalseF, TrueF]) == TrueF

    def test_conjuncts_roundtrip(self):
        parts = [Cmp("<", x, y), Cmp("=", y, Const(1))]
        assert conjuncts(conj(parts)) == parts

    def test_conjuncts_of_true_is_empty(self):
        assert conjuncts(TrueF) == []


class TestSubstitution:
    def test_substitution_distributes(self):
        f = And((Cmp("<", x, y), Or((Cmp("=", x, Const(0)), Not(Cmp(">", y, x))))))
        out = f.substitute({ObjT("x"): Const(3)})
        assert out.evaluate(getobj_from({"y": 5})) == f.evaluate(
            getobj_from({"x": 3, "y": 5})
        )

    def test_free_variable_queries(self):
        f = And((Cmp("<", x, ParamT("p")), Cmp("=", y, Const(1))))
        assert {o.name for o in f.objects()} == {"x", "y"}
        assert {p.name for p in f.params()} == {"p"}


# -- NNF property -------------------------------------------------------------

_atoms = st.builds(
    Cmp,
    st.sampled_from(["<", "<=", "=", "!=", ">", ">="]),
    st.sampled_from([x, y, Const(0), Const(7)]),
    st.sampled_from([x, y, Const(3), Const(10)]),
)

_formulas = st.recursive(
    st.one_of(_atoms, st.sampled_from([TrueF, FalseF])),
    lambda inner: st.one_of(
        st.lists(inner, min_size=1, max_size=3).map(lambda fs: And(tuple(fs))),
        st.lists(inner, min_size=1, max_size=3).map(lambda fs: Or(tuple(fs))),
        inner.map(Not),
    ),
    max_leaves=10,
)


@given(_formulas, st.integers(-5, 15), st.integers(-5, 15))
def test_nnf_preserves_semantics(formula, vx, vy):
    lookup = getobj_from({"x": vx, "y": vy})
    assert formula.to_nnf().evaluate(lookup) == formula.evaluate(lookup)


@given(_formulas, st.integers(-5, 15), st.integers(-5, 15))
def test_nnf_negation_flips_semantics(formula, vx, vy):
    lookup = getobj_from({"x": vx, "y": vy})
    assert formula.to_nnf(negate=True).evaluate(lookup) == (
        not formula.evaluate(lookup)
    )


@given(_formulas)
def test_nnf_has_no_compound_negations(formula):
    nnf = formula.to_nnf()
    for node in nnf.walk():
        if isinstance(node, Not):
            assert isinstance(node.operand, Cmp)
