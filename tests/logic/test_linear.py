"""Tests for linear normal forms (repro.logic.linear)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.formula import Cmp
from repro.logic.linear import (
    LinearConstraint,
    LinearExpr,
    LinearizationError,
    constraints_of_cmp,
    linear_of_term,
)
from repro.logic.terms import Add, Const, Mul, Neg, ObjT

x = ObjT("x")
y = ObjT("y")


class TestLinearExpr:
    def test_make_drops_zero_coefficients(self):
        expr = LinearExpr.make({x: 0, y: 2})
        assert expr.variables() == {y}

    def test_addition_merges(self):
        a = LinearExpr.make({x: 1, y: 2}, 3)
        b = LinearExpr.make({x: -1, y: 5}, 4)
        total = a + b
        assert total.coeff_map() == {y: 7}
        assert total.const == 7

    def test_subtraction(self):
        a = LinearExpr.make({x: 3})
        b = LinearExpr.make({x: 1, y: 1})
        assert (a - b).coeff_map() == {x: 2, y: -1}

    def test_scaling(self):
        assert LinearExpr.make({x: 2}, 5).scaled(-3).const == -15

    def test_evaluate(self):
        expr = LinearExpr.make({x: 2, y: -1}, 4)
        assert expr.evaluate({x: 3, y: 1}) == 9


class TestNormalization:
    def test_less_than_tightens(self):
        con = LinearConstraint.make(LinearExpr.make({x: 1}), "<", 5)
        assert con.op == "<=" and con.bound == 4

    def test_greater_than_flips(self):
        con = LinearConstraint.make(LinearExpr.make({x: 1}), ">", 5)
        # x > 5  <=>  -x <= -6
        assert con.op == "<=" and con.bound == -6
        assert con.coeff_for(x) == -1

    def test_greater_equal_flips(self):
        con = LinearConstraint.make(LinearExpr.make({x: 2}), ">=", 6)
        # 2x >= 6 -> -2x <= -6 -> tightened -x <= -3
        assert con.op == "<=" and con.bound == -3

    def test_constant_folds_into_bound(self):
        con = LinearConstraint.make(LinearExpr.make({x: 1}, 7), "<=", 10)
        assert con.bound == 3
        assert con.expr.const == 0

    def test_gcd_tightening_inequality(self):
        # 2x <= 5  ->  x <= 2 over the integers
        con = LinearConstraint.make(LinearExpr.make({x: 2}), "<=", 5)
        assert con.coeff_for(x) == 1 and con.bound == 2

    def test_gcd_equality_divisible(self):
        con = LinearConstraint.make(LinearExpr.make({x: 2, y: 4}), "=", 6)
        assert con.coeff_for(x) == 1 and con.coeff_for(y) == 2 and con.bound == 3

    def test_gcd_equality_not_divisible_is_false(self):
        # 2x - 2y = 1 has no integer solutions.
        con = LinearConstraint.make(LinearExpr.make({x: 2, y: -2}), "=", 1)
        assert con.is_trivially_false()

    def test_satisfied_by(self):
        con = LinearConstraint.make(LinearExpr.make({x: 1, y: 1}), "<=", 10)
        assert con.satisfied_by({x: 4, y: 6})
        assert not con.satisfied_by({x: 5, y: 6})

    def test_negated_inequality(self):
        con = LinearConstraint.make(LinearExpr.make({x: 1}), "<=", 5)
        neg = con.negated()
        for vx in range(0, 12):
            assert neg.satisfied_by({x: vx}) != con.satisfied_by({x: vx})

    def test_negating_equality_raises(self):
        con = LinearConstraint.make(LinearExpr.make({x: 1}), "=", 5)
        with pytest.raises(LinearizationError):
            con.negated()


class TestLowering:
    def test_linear_term(self):
        term = Add(Mul(Const(3), x), Neg(y))
        expr = linear_of_term(term)
        assert expr.coeff_map() == {x: 3, y: -1}

    def test_nonlinear_product_rejected(self):
        with pytest.raises(LinearizationError):
            linear_of_term(Mul(x, y))

    def test_constant_times_expression(self):
        expr = linear_of_term(Mul(Add(x, Const(2)), Const(4)))
        assert expr.coeff_map() == {x: 4}
        assert expr.const == 8

    def test_cmp_lowering(self):
        cons = constraints_of_cmp(Cmp("<", Add(x, y), Const(10)))
        assert len(cons) == 1
        assert cons[0].op == "<=" and cons[0].bound == 9

    def test_disequality_rejected(self):
        with pytest.raises(LinearizationError):
            constraints_of_cmp(Cmp("!=", x, y))


@given(
    st.dictionaries(st.sampled_from([x, y]), st.integers(-9, 9)),
    st.sampled_from(["<", "<=", "=", ">", ">="]),
    st.integers(-20, 20),
    st.integers(-15, 15),
    st.integers(-15, 15),
)
def test_normalization_preserves_integer_semantics(coeffs, op, bound, vx, vy):
    """The normalized constraint holds exactly when the original does."""
    con = LinearConstraint.make(LinearExpr.make(coeffs), op, bound)
    total = coeffs.get(x, 0) * vx + coeffs.get(y, 0) * vy
    original = {
        "<": total < bound,
        "<=": total <= bound,
        "=": total == bound,
        ">": total > bound,
        ">=": total >= bound,
    }[op]
    assert con.satisfied_by({x: vx, y: vy}) == original
