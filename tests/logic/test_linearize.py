"""Tests for the Appendix C.1 preprocessing (repro.logic.linearize)."""

import pytest

from repro.logic.formula import Cmp, Not, Or, conj
from repro.logic.linearize import linearize_for_treaty
from repro.logic.terms import Add, Const, Mul, ObjT, ParamT

x = ObjT("x")
y = ObjT("y")


def getobj_from(db):
    return lambda name: db.get(name, 0)


class TestLinearCases:
    def test_plain_conjunction(self):
        f = conj([Cmp(">=", Add(x, y), Const(20)), Cmp("<", x, Const(100))])
        out = linearize_for_treaty(f, getobj_from({"x": 10, "y": 13}))
        assert len(out.constraints) == 2
        assert not out.pinned

    def test_result_holds_on_database(self):
        f = Cmp(">=", Add(x, y), Const(20))
        out = linearize_for_treaty(f, getobj_from({"x": 10, "y": 13}))
        assert out.holds_on(getobj_from({"x": 10, "y": 13}))
        assert not out.holds_on(getobj_from({"x": 1, "y": 1}))

    def test_formula_must_hold_on_d(self):
        f = Cmp(">=", Add(x, y), Const(20))
        with pytest.raises(ValueError):
            linearize_for_treaty(f, getobj_from({"x": 1, "y": 1}))

    def test_negated_atom_via_nnf(self):
        f = Not(Cmp("<", x, Const(5)))  # i.e. x >= 5
        out = linearize_for_treaty(f, getobj_from({"x": 7}))
        assert len(out.constraints) == 1
        assert not out.pinned

    def test_parameter_instantiation(self):
        f = Cmp(">", x, ParamT("p"))
        out = linearize_for_treaty(f, getobj_from({"x": 10}), params={"p": 3})
        assert out.holds_on(getobj_from({"x": 10}))


class TestPinningCases:
    def test_disequality_pins(self):
        f = Cmp("!=", x, Const(5))
        out = linearize_for_treaty(f, getobj_from({"x": 7}))
        assert {o.name for o in out.pinned} == {"x"}
        # pinned means x = 7 is enforced
        assert out.holds_on(getobj_from({"x": 7}))
        assert not out.holds_on(getobj_from({"x": 8}))

    def test_disjunction_pins_all_variables(self):
        f = Or((Cmp("<", x, Const(0)), Cmp(">", y, Const(5))))
        out = linearize_for_treaty(f, getobj_from({"x": 3, "y": 9}))
        assert {o.name for o in out.pinned} == {"x", "y"}

    def test_nonlinear_atom_pins(self):
        f = Cmp("<", Mul(x, y), Const(100))
        out = linearize_for_treaty(f, getobj_from({"x": 3, "y": 4}))
        assert {o.name for o in out.pinned} == {"x", "y"}

    def test_pinned_result_is_stronger(self):
        """Appendix C.1: the preprocessed formula implies the original."""
        f = Or((Cmp("<", x, Const(0)), Cmp(">", y, Const(5))))
        db = {"x": 3, "y": 9}
        out = linearize_for_treaty(f, getobj_from(db))
        # Any database satisfying the pins satisfies the original formula.
        for vx in range(-2, 6):
            for vy in range(0, 12):
                candidate = {"x": vx, "y": vy}
                if out.holds_on(getobj_from(candidate)):
                    assert f.evaluate(getobj_from(candidate))

    def test_mixed_linear_and_pinned(self):
        f = conj([Cmp("<=", x, Const(50)), Cmp("!=", y, Const(0))])
        out = linearize_for_treaty(f, getobj_from({"x": 10, "y": 3}))
        assert {o.name for o in out.pinned} == {"y"}
        assert len(out.constraints) == 2
