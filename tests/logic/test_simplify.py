"""Tests for formula simplification (repro.logic.simplify)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.logic.formula import And, Cmp, FalseF, Not, Or, TrueF, conj
from repro.logic.simplify import simplify_formula
from repro.logic.terms import Add, Const, ObjT

x = ObjT("x")
y = ObjT("y")


def getobj_from(db):
    return lambda name: db.get(name, 0)


class TestConstantAtoms:
    def test_true_atom_drops(self):
        f = conj([Cmp("<", Const(1), Const(2)), Cmp("<", x, y)])
        assert simplify_formula(f) == Cmp("<", x, y)

    def test_false_atom_collapses(self):
        f = conj([Cmp(">", Const(1), Const(2)), Cmp("<", x, y)])
        assert simplify_formula(f) == FalseF

    def test_folding_inside_atoms(self):
        f = Cmp("<", Add(Const(2), Const(3)), Const(10))
        assert simplify_formula(f) == TrueF


class TestContradictions:
    def test_opposite_bounds(self):
        # x < 10 and x >= 10 is unsatisfiable.
        f = conj([Cmp("<", x, Const(10)), Cmp(">=", x, Const(10))])
        assert simplify_formula(f) == FalseF

    def test_equality_vs_upper_bound(self):
        f = conj([Cmp("=", x, Const(5)), Cmp("<", x, Const(5))])
        assert simplify_formula(f) == FalseF

    def test_equality_vs_lower_bound(self):
        f = conj([Cmp("=", x, Const(5)), Cmp(">", x, Const(5))])
        assert simplify_formula(f) == FalseF

    def test_conflicting_equalities(self):
        f = conj([Cmp("=", x, Const(5)), Cmp("=", x, Const(6))])
        assert simplify_formula(f) == FalseF

    def test_compatible_interval_survives(self):
        f = conj([Cmp(">=", x, Const(3)), Cmp("<=", x, Const(7))])
        assert simplify_formula(f) != FalseF

    def test_multivariable_contradiction(self):
        f = conj([Cmp("<", Add(x, y), Const(10)), Cmp(">=", Add(x, y), Const(20))])
        assert simplify_formula(f) == FalseF


class TestSubsumption:
    def test_looser_bound_dropped(self):
        # Figure 4c: x + y >= 10 and x + y >= 20 simplifies to >= 20.
        f = conj([Cmp(">=", Add(x, y), Const(10)), Cmp(">=", Add(x, y), Const(20))])
        out = simplify_formula(f)
        assert out == Cmp(">=", Add(x, y), Const(20))

    def test_duplicate_atom_dropped(self):
        f = And((Cmp("<", x, Const(5)), Cmp("<", x, Const(5))))
        out = simplify_formula(f)
        assert out == Cmp("<", x, Const(5))

    def test_equality_subsumes_inequality(self):
        f = conj([Cmp("=", x, Const(3)), Cmp("<=", x, Const(7))])
        out = simplify_formula(f)
        assert out == Cmp("=", x, Const(3))


# -- property: simplification is semantics-preserving --------------------------

_atoms = st.builds(
    Cmp,
    st.sampled_from(["<", "<=", "=", "!=", ">", ">="]),
    st.sampled_from([x, y, Add(x, y), Const(5)]),
    st.sampled_from([x, y, Const(0), Const(10), Const(20)]),
)

_formulas = st.recursive(
    _atoms,
    lambda inner: st.one_of(
        st.lists(inner, min_size=1, max_size=4).map(lambda fs: And(tuple(fs))),
        st.lists(inner, min_size=1, max_size=3).map(lambda fs: Or(tuple(fs))),
        inner.map(Not),
    ),
    max_leaves=12,
)


@given(_formulas, st.integers(-5, 25), st.integers(-5, 25))
def test_simplify_preserves_semantics(formula, vx, vy):
    lookup = getobj_from({"x": vx, "y": vy})
    assert simplify_formula(formula).evaluate(lookup) == formula.evaluate(lookup)
