"""Unit tests for the term layer (repro.logic.terms)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.terms import (
    Add,
    Const,
    IndexedObjT,
    Mul,
    Neg,
    ObjT,
    ParamT,
    TempT,
    fold_constants,
    ground_name,
    parse_ground_name,
)


def getobj_from(db):
    return lambda name: db.get(name, 0)


class TestGroundNames:
    def test_roundtrip_single_index(self):
        name = ground_name("qty", (7,))
        assert name == "qty[7]"
        assert parse_ground_name(name) == ("qty", (7,))

    def test_roundtrip_multi_index(self):
        name = ground_name("stock", (3, 14))
        assert name == "stock[3,14]"
        assert parse_ground_name(name) == ("stock", (3, 14))

    def test_scalar_names_do_not_parse(self):
        assert parse_ground_name("x") is None
        assert parse_ground_name("balance") is None

    def test_malformed_brackets(self):
        assert parse_ground_name("a[b]") is None
        assert parse_ground_name("[3]") is None

    def test_negative_indices_roundtrip(self):
        name = ground_name("a", (-2,))
        assert parse_ground_name(name) == ("a", (-2,))


class TestEvaluation:
    def test_const(self):
        assert Const(42).evaluate(getobj_from({})) == 42

    def test_obj_reads_database(self):
        assert ObjT("x").evaluate(getobj_from({"x": 9})) == 9

    def test_obj_defaults_to_zero(self):
        assert ObjT("missing").evaluate(getobj_from({})) == 0

    def test_param_lookup(self):
        assert ParamT("p").evaluate(getobj_from({}), params={"p": 5}) == 5

    def test_param_unbound_raises(self):
        with pytest.raises(KeyError):
            ParamT("p").evaluate(getobj_from({}))

    def test_temp_lookup(self):
        assert TempT("t").evaluate(getobj_from({}), temps={"t": -3}) == -3

    def test_temp_unbound_raises(self):
        with pytest.raises(KeyError):
            TempT("t").evaluate(getobj_from({}))

    def test_arithmetic(self):
        term = Add(Mul(Const(3), ObjT("x")), Neg(Const(4)))
        assert term.evaluate(getobj_from({"x": 5})) == 11

    def test_indexed_resolution(self):
        term = IndexedObjT("a", (Add(ParamT("i"), Const(1)),))
        db = {"a[3]": 77}
        assert term.evaluate(getobj_from(db), params={"i": 2}) == 77

    def test_operator_sugar(self):
        term = (ObjT("x") + 2) * 3 - ObjT("y")
        assert term.evaluate(getobj_from({"x": 1, "y": 4})) == 5


class TestSubstitution:
    def test_obj_substitution(self):
        term = Add(ObjT("x"), ObjT("y"))
        out = term.substitute({ObjT("x"): Const(7)})
        assert out.evaluate(getobj_from({"y": 1})) == 8

    def test_temp_substitution(self):
        term = Mul(TempT("t"), Const(2))
        out = term.substitute({TempT("t"): ObjT("x")})
        assert out == Mul(ObjT("x"), Const(2))

    def test_indexed_ground_key_matches(self):
        # Substituting the ground ObjT form must also hit an
        # IndexedObjT whose index folds to the same slot.
        term = IndexedObjT("a", (Const(2),))
        out = term.substitute({ObjT("a[2]"): Const(5)})
        assert out == Const(5)

    def test_index_substitution_cascades(self):
        term = IndexedObjT("a", (TempT("i"),))
        out = term.substitute({TempT("i"): Const(3), ObjT("a[3]"): Const(9)})
        assert out == Const(9)

    def test_substitute_missing_is_identity(self):
        term = Add(ObjT("x"), Const(1))
        assert term.substitute({ObjT("z"): Const(0)}) == term


class TestFoldConstants:
    def test_addition_folds(self):
        assert fold_constants(Add(Const(2), Const(3))) == Const(5)

    def test_multiplication_folds(self):
        assert fold_constants(Mul(Const(4), Const(-2))) == Const(-8)

    def test_zero_identity(self):
        assert fold_constants(Add(ObjT("x"), Const(0))) == ObjT("x")
        assert fold_constants(Add(Const(0), ObjT("x"))) == ObjT("x")

    def test_one_identity(self):
        assert fold_constants(Mul(Const(1), ObjT("x"))) == ObjT("x")
        assert fold_constants(Mul(ObjT("x"), Const(1))) == ObjT("x")

    def test_zero_absorbs(self):
        assert fold_constants(Mul(ObjT("x"), Const(0))) == Const(0)

    def test_double_negation(self):
        assert fold_constants(Neg(Neg(ObjT("x")))) == ObjT("x")

    def test_indexed_grounds_constant_index(self):
        term = IndexedObjT("a", (Add(Const(1), Const(2)),))
        assert fold_constants(term) == ObjT("a[3]")


# -- property tests -----------------------------------------------------------

_leaf = st.one_of(
    st.integers(-50, 50).map(Const),
    st.sampled_from(["x", "y", "z"]).map(ObjT),
)


def _terms(depth=3):
    return st.recursive(
        _leaf,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda ab: Add(*ab)),
            st.tuples(inner, inner).map(lambda ab: Mul(*ab)),
            inner.map(Neg),
        ),
        max_leaves=12,
    )


@given(_terms(), st.dictionaries(st.sampled_from(["x", "y", "z"]), st.integers(-20, 20)))
def test_fold_constants_preserves_semantics(term, db):
    lookup = getobj_from(db)
    assert fold_constants(term).evaluate(lookup) == term.evaluate(lookup)


@given(_terms(), st.integers(-10, 10), st.dictionaries(st.sampled_from(["y", "z"]), st.integers(-20, 20)))
def test_substitution_matches_environment_change(term, value, db):
    """term{v/x} evaluated == term evaluated with x := v."""
    lookup_with_x = getobj_from({**db, "x": value})
    substituted = term.substitute({ObjT("x"): Const(value)})
    assert substituted.evaluate(getobj_from(db)) == term.evaluate(lookup_with_x)
