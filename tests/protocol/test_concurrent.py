"""The concurrent cleanup runtime: racing violators and a real vote.

Covers the acceptance criteria of the concurrent kernel:

- two or more transactions violate treaties over overlapping objects
  in the same window; exactly one wins the election, with real
  ``Vote``/``VoteReply`` messages in the transport trace;
- losers abort and re-run after the winner's negotiation installs new
  treaties, and the final ``global_state()`` equals a serial
  reference execution in window commit order;
- negotiations over disjoint participant closures proceed in
  parallel: their transport rounds' open/close intervals overlap
  instead of serializing.
"""

import random

import pytest

from repro.lang.interp import evaluate
from repro.protocol.homeostasis import ProtocolError
from repro.protocol.messages import SyncBroadcast, Vote, VoteReply
from repro.protocol.transport import Transport, TransportError
from repro.workloads.geo import GeoMicroWorkload
from repro.workloads.micro import MicroWorkload


def _race_window(num_per_site=3):
    """A window guaranteed to make both sites violate on item 0: with
    refill=4 and equal-split treaties each site's budget for the item
    is ~1 decrement, and the window issues three from each site."""
    workload = MicroWorkload(num_items=2, refill=4, num_sites=2)
    cluster = workload.build_concurrent(strategy="equal-split", validate=True)
    window = [
        (f"Buy@s{s}", {"item": 0})
        for _ in range(num_per_site)
        for s in (0, 1)
    ]
    return workload, cluster, window


def _serial_replay(workload, window, result):
    state = dict(workload.initial_db)
    logs = {}
    for idx in result.commit_order:
        name, params = window[idx]
        out = evaluate(workload.reference_transaction(name), state, params=params)
        state = out.db
        logs[idx] = out.log
    return state, logs


class TestRacingViolators:
    def test_racing_violators_elect_one_winner(self):
        workload, cluster, window = _race_window()
        result = cluster.submit_window(window)
        assert result.contended
        first_wave = result.waves[0]
        assert len(first_wave) == 1
        group = first_wave[0]
        # At least two violators raced over item 0, from both sites.
        assert len(group.members) >= 2
        assert group.contender_sites == (0, 1)
        # Exactly one winner per group, chosen by the lowest
        # (timestamp, site, txn_seq) tuple: the first site-0 violator.
        assert group.winner == min(group.members)
        winner_out = result.outcomes[group.winner]
        assert winner_out.synced and winner_out.lost_votes == 0

    def test_vote_and_arbitration_messages_on_the_wire(self):
        _workload, cluster, window = _race_window()
        result = cluster.submit_window(window)
        group = result.waves[0][0]
        trace = next(
            n for n in cluster.transport.negotiations
            if n.index == group.negotiation_index
        )
        votes = [m for m in trace.messages if isinstance(m, Vote)]
        replies = [m for m in trace.messages if isinstance(m, VoteReply)]
        # Cross-site contenders exchanged priority claims both ways...
        assert {(m.src, m.dst) for m in votes} == {(0, 1), (1, 0)}
        for vote in votes:
            assert vote.txn_seq >= 0
        # ...and every cross-site loser conceded to the winner.
        assert replies
        winner_site = result.outcomes[group.winner].site
        for reply in replies:
            assert reply.dst == winner_site
            assert reply.winner_site == winner_site

    def test_losers_rerun_after_treaty_install(self):
        _workload, cluster, window = _race_window()
        result = cluster.submit_window(window)
        group = result.waves[0][0]
        winner_out = result.outcomes[group.winner]
        for loser in group.losers:
            out = result.outcomes[loser]
            assert out.lost_votes >= 1
            # The loser's effect lands after the winner's negotiation.
            assert out.commit_seq > winner_out.commit_seq
        # Everything in the window eventually committed.
        assert sorted(result.commit_order) == list(range(len(window)))
        assert all(o.commit_seq >= 0 for o in result.outcomes)

    def test_final_state_matches_serial_reference(self):
        workload, cluster, window = _race_window()
        result = cluster.submit_window(window)
        assert result.contended
        state, logs = _serial_replay(workload, window, result)
        for idx, out in enumerate(result.outcomes):
            assert out.log == logs[idx], f"log diverged for request {idx}"
        final = cluster.global_state()
        for key in set(state) | set(final):
            assert state.get(key, 0) == final.get(key, 0), key

    def test_timestamp_outranks_site(self):
        """A later-arriving site-0 violator loses to an earlier site-1
        one when the caller supplies real arrival stamps."""
        workload = MicroWorkload(num_items=2, refill=4, num_sites=2)
        cluster = workload.build_concurrent(strategy="equal-split")
        window = [(f"Buy@s{s}", {"item": 0}) for _ in range(3) for s in (1, 0)]
        result = cluster.submit_window(window, timestamps=list(range(len(window))))
        group = result.waves[0][0]
        # Site 1 issued the first (lowest-stamp) violating attempt.
        assert result.outcomes[group.winner].site == 1

    def test_window_determinism(self):
        runs = []
        for _ in range(2):
            workload, cluster, window = _race_window()
            result = cluster.submit_window(window)
            runs.append(
                (
                    [(o.index, o.log, o.synced, o.lost_votes, o.commit_seq)
                     for o in result.outcomes],
                    result.commit_order,
                    [type(m).__name__ for m in cluster.transport.trace],
                    cluster.global_state(),
                )
            )
        assert runs[0] == runs[1]

    def test_randomized_windows_stay_serial_equivalent(self):
        """Many windows of random interleaved submissions: every
        window's logs match the serial replay in commit order."""
        workload = MicroWorkload(num_items=4, refill=8, num_sites=2)
        cluster = workload.build_concurrent(strategy="equal-split", validate=True)
        rng = random.Random(13)
        state = dict(workload.initial_db)
        contested = 0
        for _ in range(60):
            window = []
            for _ in range(4):
                req = workload.next_request(rng)
                window.append((req.tx_name, req.params))
            result = cluster.submit_window(window)
            contested += result.contended
            for idx in result.commit_order:
                name, params = window[idx]
                out = evaluate(
                    workload.reference_transaction(name), state, params=params
                )
                state = out.db
                assert out.log == result.outcomes[idx].log
        assert contested > 0, "expected at least one real race"
        final = cluster.global_state()
        for key in set(state) | set(final):
            assert state.get(key, 0) == final.get(key, 0), key

    def test_single_submissions_still_work(self):
        """The inherited per-transaction path is unchanged."""
        workload = MicroWorkload(num_items=3, refill=6, num_sites=2)
        cluster = workload.build_concurrent(strategy="equal-split", validate=True)
        rng = random.Random(3)
        for _ in range(80):
            req = workload.next_request(rng)
            out = cluster.submit(req.tx_name, req.params)
            assert out.log is not None
        assert cluster.stats.negotiations > 0

    def test_unknown_transaction_rejected(self):
        workload = MicroWorkload(num_items=2, refill=4, num_sites=2)
        cluster = workload.build_concurrent(strategy="equal-split")
        with pytest.raises(ProtocolError):
            cluster.submit_window([("NoSuchTx", {})])

    def test_timestamps_must_match_requests(self):
        workload = MicroWorkload(num_items=2, refill=4, num_sites=2)
        cluster = workload.build_concurrent(strategy="equal-split")
        with pytest.raises(ProtocolError):
            cluster.submit_window([("Buy@s0", {"item": 0})], timestamps=[0, 1])


class TestParallelNegotiations:
    def _geo(self):
        workload = GeoMicroWorkload(
            groups=((0, 1), (2, 3)), num_sites=4, items_per_group=2, refill=4
        )
        cluster = workload.build_concurrent(strategy="equal-split", validate=True)
        window = [(f"Buy0@s{s}", {"item": 0}) for s in (0, 1, 0, 1)]
        window += [(f"Buy1@s{s}", {"item": 0}) for s in (2, 3, 2, 3)]
        return workload, cluster, window

    def test_disjoint_closures_do_not_serialize(self):
        _workload, cluster, window = self._geo()
        result = cluster.submit_window(window)
        first_wave = result.waves[0]
        assert len(first_wave) == 2, "expected two disjoint conflict groups"
        scopes = [set(g.scope) for g in first_wave]
        assert scopes[0] & scopes[1] == set()
        negs = {n.index: n for n in cluster.transport.negotiations}
        a = negs[first_wave[0].negotiation_index]
        b = negs[first_wave[1].negotiation_index]
        # Both rounds were open at once: interleaved, not serialized.
        assert a.overlaps(b)
        assert a.wave == b.wave == 0
        # Each round's messages stayed inside its own scope.
        for trace, group in zip((a, b), first_wave):
            assert set(trace.participants) <= set(group.scope)
            assert trace.sync_message_count == len(group.participants) * (
                len(group.participants) - 1
            )

    def test_parallel_wave_stays_serial_equivalent(self):
        workload, cluster, window = self._geo()
        result = cluster.submit_window(window)
        state, logs = _serial_replay(workload, window, result)
        for idx, out in enumerate(result.outcomes):
            assert out.log == logs[idx]
        final = cluster.global_state()
        for key in set(state) | set(final):
            assert state.get(key, 0) == final.get(key, 0), key

    def test_non_participants_untouched_by_wave(self):
        """Sites outside both groups' closures hear nothing."""
        workload = GeoMicroWorkload(
            groups=((0, 1), (2, 3)), num_sites=5, items_per_group=2, refill=4
        )
        cluster = workload.build_concurrent(strategy="equal-split", validate=True)
        window = [(f"Buy0@s{s}", {"item": 0}) for s in (0, 1, 0, 1)]
        result = cluster.submit_window(window)
        assert result.contended
        for trace in cluster.transport.negotiations:
            for msg in trace.messages:
                assert msg.src != 4 and msg.dst != 4


class TestConcurrentTransportContexts:
    def test_overlapping_scopes_rejected(self):
        transport = Transport()
        transport.begin("cleanup", 0, scope=frozenset({0, 1}))
        with pytest.raises(TransportError):
            transport.begin("cleanup", 1, scope=frozenset({1, 2}))

    def test_scoped_inside_exclusive_rejected(self):
        transport = Transport()
        with transport.negotiation("cleanup", 0):
            with pytest.raises(TransportError):
                transport.begin("cleanup", 1, scope=frozenset({2, 3}))

    def test_messages_attributed_by_scope(self):
        class _Ack:
            def handle(self, msg):
                return True

        transport = Transport()
        for sid in range(4):
            transport.register(sid, _Ack())
        a = transport.begin("cleanup", 0, scope=frozenset({0, 1}))
        b = transport.begin("cleanup", 2, scope=frozenset({2, 3}))
        transport.send(SyncBroadcast(src=0, dst=1))
        transport.send(SyncBroadcast(src=2, dst=3))
        transport.send(SyncBroadcast(src=1, dst=0))
        transport.end(b)
        transport.end(a)
        assert [m.src for m in a.messages] == [0, 1]
        assert [m.src for m in b.messages] == [2]
        assert a.overlaps(b) and b.overlaps(a)

    def test_unattributable_message_rejected(self):
        class _Ack:
            def handle(self, msg):
                return True

        transport = Transport()
        for sid in range(5):
            transport.register(sid, _Ack())
        transport.begin("cleanup", 0, scope=frozenset({0, 1}))
        transport.begin("cleanup", 2, scope=frozenset({2, 3}))
        with pytest.raises(TransportError):
            transport.send(SyncBroadcast(src=4, dst=0))

    def test_ending_unopened_round_rejected(self):
        transport = Transport()
        trace = transport.begin("cleanup", 0)
        transport.end(trace)
        with pytest.raises(TransportError):
            transport.end(trace)

    def test_sequential_rounds_do_not_overlap(self):
        transport = Transport()
        with transport.negotiation("cleanup", 0) as a:
            pass
        with transport.negotiation("cleanup", 1) as b:
            pass
        assert not a.overlaps(b)
