"""The construction facade: ClusterSpec, build_cluster, Outcome.

The API-redesign acceptance criteria:

- one :class:`ClusterSpec` drives all three kernels through
  :func:`build_cluster`;
- the old positional constructors keep working behind a deprecation
  shim (warned, delegating, observably identical);
- :class:`ConcurrentCluster` has a real typed signature (no
  ``*args, **kwargs`` swallowing);
- one :class:`Outcome` enum spans ``ClusterResult`` and
  ``WindowOutcome``, and ``try_submit`` maps unavailability into it
  instead of making callers fingerprint exceptions.
"""

import inspect
import random

import pytest

from repro.protocol.concurrent import ConcurrentCluster
from repro.protocol.config import KERNELS, ClusterSpec, build_cluster
from repro.protocol.homeostasis import HomeostasisCluster, Unavailable
from repro.protocol.messages import Outcome
from repro.workloads.micro import MicroWorkload


def _spec(**kwargs):
    return MicroWorkload(num_items=6, refill=6, num_sites=2).cluster_spec(
        strategy="equal-split", **kwargs
    )


class TestClusterSpec:
    def test_spec_is_frozen(self):
        spec = _spec()
        with pytest.raises(AttributeError):
            spec.validate = True

    def test_make_generator_is_fresh_per_call(self):
        spec = _spec()
        assert spec.make_generator() is not spec.make_generator()

    def test_workloads_expose_specs(self):
        from repro.workloads.geo import GeoMicroWorkload
        from repro.workloads.tpcc import TpccWorkload

        assert isinstance(_spec(), ClusterSpec)
        assert isinstance(
            GeoMicroWorkload().cluster_spec(strategy="equal-split"), ClusterSpec
        )
        assert isinstance(
            TpccWorkload().cluster_spec(strategy="equal-split"), ClusterSpec
        )


class TestBuildCluster:
    def test_sequential_kernel(self):
        cluster = build_cluster(_spec())
        assert type(cluster) is HomeostasisCluster
        assert cluster.submit("Buy@s0", {"item": 0}).status is Outcome.COMMITTED

    def test_concurrent_kernel(self):
        cluster = build_cluster(_spec(), kernel="concurrent")
        assert type(cluster) is ConcurrentCluster

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            build_cluster(_spec(), kernel="quantum")
        assert set(KERNELS) == {"sequential", "concurrent", "async"}

    def test_in_process_kernels_reject_async_options(self):
        with pytest.raises(TypeError, match="takes no extra options"):
            build_cluster(_spec(), kernel="sequential", timeout_s=1.0)

    def test_construction_emits_no_deprecation_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_cluster(_spec())
            build_cluster(_spec(), kernel="concurrent")


class TestDeprecationShim:
    def _legacy_kwargs(self):
        spec = _spec()
        return dict(
            site_ids=spec.sites,
            locate=spec.locate,
            initial_db=spec.initial_db,
            tables=spec.tables,
            tx_home=spec.tx_home,
            generator=spec.make_generator(),
        )

    def test_old_constructor_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="build_cluster"):
            cluster = HomeostasisCluster(**self._legacy_kwargs())
        assert cluster.submit("Buy@s0", {"item": 0}).status is Outcome.COMMITTED

    def test_concurrent_constructor_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="build_cluster"):
            cluster = ConcurrentCluster(**self._legacy_kwargs())
        result = cluster.submit_window([("Buy@s0", {"item": 0})])
        assert result.outcomes[0].status is Outcome.COMMITTED

    def test_old_constructor_accepts_negotiation_keyword(self):
        from repro.protocol.paxos_commit import NegotiationSpec

        with pytest.warns(DeprecationWarning, match="build_cluster"):
            cluster = HomeostasisCluster(
                negotiation=NegotiationSpec(policy="credit"),
                **self._legacy_kwargs(),
            )
        assert cluster.fairness_stats()["policy"] == "credit"
        assert cluster.submit("Buy@s0", {"item": 0}).status is Outcome.COMMITTED

    def test_shimmed_and_spec_built_clusters_agree(self):
        with pytest.warns(DeprecationWarning):
            legacy = HomeostasisCluster(**self._legacy_kwargs())
        modern = build_cluster(_spec())
        rng = random.Random(3)
        schedule = [
            (f"Buy@s{rng.randrange(2)}", {"item": rng.randrange(6)})
            for _ in range(20)
        ]
        for name, params in schedule:
            assert legacy.submit(name, params).log == modern.submit(name, params).log
        assert legacy.global_state() == modern.global_state()

    def test_concurrent_signature_is_typed(self):
        params = inspect.signature(ConcurrentCluster.__init__).parameters
        assert "site_ids" in params and "generator" in params
        assert not any(
            p.kind is inspect.Parameter.VAR_POSITIONAL for p in params.values()
        )


class TestOutcome:
    def test_committed_result(self):
        cluster = build_cluster(_spec())
        result = cluster.submit("Buy@s0", {"item": 0})
        assert result.status is Outcome.COMMITTED

    def test_try_submit_maps_refusal(self):
        cluster = build_cluster(_spec())
        cluster.crash_site(0)
        result = cluster.try_submit("Buy@s0", {"item": 0})
        assert result.status is Outcome.REFUSED
        assert result.log == ()

    def test_submit_still_raises_with_status(self):
        cluster = build_cluster(_spec())
        cluster.crash_site(0)
        with pytest.raises(Unavailable) as exc_info:
            cluster.submit("Buy@s0", {"item": 0})
        assert exc_info.value.status is Outcome.REFUSED

    def test_window_outcomes_share_the_enum(self):
        cluster = build_cluster(_spec(), kernel="concurrent")
        result = cluster.submit_window(
            [("Buy@s0", {"item": 0}), ("Buy@s1", {"item": 1})]
        )
        for outcome in result.outcomes:
            assert outcome.status is Outcome.COMMITTED
            assert outcome.failed is False

    def test_window_refusal_on_crashed_origin(self):
        cluster = build_cluster(_spec(), kernel="concurrent")
        cluster.crash_site(1)
        result = cluster.submit_window(
            [("Buy@s0", {"item": 0}), ("Buy@s1", {"item": 1})]
        )
        statuses = [o.status for o in result.outcomes]
        assert statuses[0] is Outcome.COMMITTED
        assert statuses[1] is Outcome.REFUSED
        assert result.outcomes[1].failed is True

    def test_enum_values_are_wire_stable(self):
        assert {o.value for o in Outcome} == {
            "committed",
            "aborted",
            "unavailable",
            "refused",
        }
