"""Theorem 3.8 as executable property tests.

The homeostasis protocol's correctness guarantee: an external
observer cannot distinguish a protocol execution from a serial
execution of the same transactions on a consistent database --
same per-transaction logs, same final database.

These tests run randomized workload schedules through the full
protocol kernel (treaty generation, disconnected execution, violation
-> synchronization -> rerun) and compare against the straightforward
serial evaluation.  Every treaty strategy must pass.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang.interp import evaluate
from repro.workloads.micro import MicroWorkload


def _run_schedule(cluster, workload, schedule):
    logs = []
    for req in schedule:
        logs.append(cluster.submit(req.tx_name, req.params).log)
    return logs


def _serial_reference(workload, schedule):
    state = dict(workload.initial_db)
    logs = []
    for req in schedule:
        out = evaluate(
            workload.reference_transaction(req.tx_name), state, params=req.params
        )
        state = out.db
        logs.append(out.log)
    return state, logs


def _assert_equivalent(cluster, workload, schedule):
    logs = _run_schedule(cluster, workload, schedule)
    state, serial_logs = _serial_reference(workload, schedule)
    assert logs == serial_logs, "per-transaction logs diverged"
    final = cluster.global_state()
    for key in set(state) | set(final):
        assert state.get(key, 0) == final.get(key, 0), f"divergence on {key}"


@pytest.mark.parametrize("strategy", ["default", "equal-split", "optimized"])
def test_theorem_38_micro(strategy):
    workload = MicroWorkload(num_items=8, refill=12, num_sites=2)
    cluster = workload.build_homeostasis(strategy=strategy, validate=True)
    rng = random.Random(42)
    schedule = [workload.next_request(rng) for _ in range(300)]
    _assert_equivalent(cluster, workload, schedule)


@pytest.mark.parametrize("num_sites", [2, 3, 4])
def test_theorem_38_varying_sites(num_sites):
    workload = MicroWorkload(num_items=5, refill=10, num_sites=num_sites)
    cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
    rng = random.Random(7)
    schedule = [workload.next_request(rng) for _ in range(200)]
    _assert_equivalent(cluster, workload, schedule)


def test_theorem_38_multi_item():
    workload = MicroWorkload(num_items=8, refill=15, num_sites=2, items_per_txn=2)
    cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
    rng = random.Random(3)
    schedule = [workload.next_request(rng) for _ in range(200)]
    _assert_equivalent(cluster, workload, schedule)


def test_theorem_38_skewed_sites():
    workload = MicroWorkload(
        num_items=6, refill=10, num_sites=2, site_weights={0: 0.9, 1: 0.1}
    )
    cluster = workload.build_homeostasis(strategy="optimized", validate=True)
    rng = random.Random(11)
    schedule = [workload.next_request(rng) for _ in range(250)]
    _assert_equivalent(cluster, workload, schedule)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    num_items=st.integers(2, 6),
    refill=st.integers(4, 20),
    strategy=st.sampled_from(["default", "equal-split", "optimized"]),
)
def test_theorem_38_property(seed, num_items, refill, strategy):
    """PROPERTY: protocol execution is observationally equivalent to
    serial execution for random workloads, populations, strategies."""
    workload = MicroWorkload(num_items=num_items, refill=refill, num_sites=2)
    cluster = workload.build_homeostasis(strategy=strategy, validate=True)
    rng = random.Random(seed)
    schedule = [workload.next_request(rng) for _ in range(120)]
    _assert_equivalent(cluster, workload, schedule)


class TestProtocolAccounting:
    def test_sync_ratio_and_messages(self):
        workload = MicroWorkload(num_items=4, refill=8, num_sites=2)
        cluster = workload.build_homeostasis(strategy="equal-split")
        rng = random.Random(1)
        for _ in range(200):
            req = workload.next_request(rng)
            cluster.submit(req.tx_name, req.params)
        stats = cluster.stats
        assert stats.submitted == 200
        assert 0 < stats.negotiations < 200
        assert stats.committed_local == 200 - stats.negotiations
        # Each negotiation is one sync round: K*(K-1) broadcasts.
        assert stats.messages.sync_broadcasts == stats.negotiations * 2
        assert stats.messages.vote_messages == stats.negotiations * 1

    def test_default_strategy_syncs_on_every_write(self):
        """Theorem 4.3's frozen default degenerates to distributed
        locking: every state-changing transaction negotiates."""
        workload = MicroWorkload(num_items=3, refill=10, num_sites=2)
        cluster = workload.build_homeostasis(strategy="default")
        rng = random.Random(5)
        for _ in range(50):
            req = workload.next_request(rng)
            cluster.submit(req.tx_name, req.params)
        assert cluster.stats.negotiations == 50

    def test_unknown_transaction_rejected(self):
        from repro.protocol.homeostasis import ProtocolError

        workload = MicroWorkload(num_items=2, refill=5, num_sites=2)
        cluster = workload.build_homeostasis(strategy="equal-split")
        with pytest.raises(ProtocolError):
            cluster.submit("NoSuchTx", {})

    def test_force_synchronize(self):
        workload = MicroWorkload(num_items=3, refill=10, num_sites=2)
        cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
        rng = random.Random(2)
        for _ in range(30):
            req = workload.next_request(rng)
            cluster.submit(req.tx_name, req.params)
        before = cluster.stats.rounds
        cluster.force_synchronize()
        assert cluster.stats.rounds == before + 1

    def test_incremental_matches_full_regeneration(self):
        """The incremental treaty cache must produce the same local
        treaties a from-scratch generator would."""
        workload = MicroWorkload(num_items=4, refill=10, num_sites=2)
        cluster = workload.build_homeostasis(strategy="equal-split")
        rng = random.Random(9)
        for _ in range(150):
            req = workload.next_request(rng)
            cluster.submit(req.tx_name, req.params)
        # Rebuild from scratch on the synchronized state.
        cluster.force_synchronize()
        fresh_gen = workload.build_homeostasis(strategy="equal-split").generator
        ref = cluster.sites[0].engine.peek
        snapshot = cluster.sites[0].engine.store.snapshot()
        fresh = fresh_gen.generate(ref, snapshot, 1, dirty=None)
        incremental = cluster.treaty_table
        assert incremental is not None
        for site in (0, 1):
            a = {c.pretty() for c in incremental.local_for(site).constraints}
            b = {c.pretty() for c in fresh.local_for(site).constraints}
            assert a == b
