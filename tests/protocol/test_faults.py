"""Fault injection, crash-stop recovery, and availability.

Covers the acceptance criteria of the fault-tolerant runtime:

- the FaultPlan is deterministic and order-independent (same seed ->
  same drop/delay schedule, regardless of call pattern);
- partitions sever exactly their edge set for exactly their window;
- an unreachable participant surfaces as a timeout that aborts the
  round cleanly (treaties and state unchanged, trace marked aborted);
- crashed sites are refused from participant closures until they
  rejoin; transactions retry successfully after recovery;
- a recovered site replays its WAL and rejoins with an identical
  installed treaty (asserted in validate mode, H1/H2 intact);
- 2PC blocks during any outage (the Gray & Lamport behaviour) while
  homeostasis keeps committing on the surviving sites -- also at the
  simulator level, where the availability gap is the metric;
- the concurrent runtime degrades per conflict group, not wholesale.
"""

import random

import pytest

from repro.protocol.concurrent import ConcurrentCluster
from repro.protocol.faults import FaultPlan, Partition
from repro.protocol.homeostasis import Unavailable
from repro.protocol.messages import SyncBroadcast, Vote
from repro.protocol.transport import Transport, UnreachableError
from repro.sim.experiments import run_faults
from repro.workloads.micro import MicroWorkload


class _Recorder:
    def __init__(self):
        self.received = []

    def handle(self, msg):
        self.received.append(msg)
        return "ack"


def _fabric(n=3, faults=None):
    transport = Transport(faults=faults)
    endpoints = [_Recorder() for _ in range(n)]
    for sid, ep in enumerate(endpoints):
        transport.register(sid, ep)
    return transport, endpoints


class TestFaultPlan:
    def test_drop_schedule_is_deterministic_and_index_keyed(self):
        plan = FaultPlan(seed=7, drop_rate=0.3)
        fates = [plan.drops(i) for i in range(200)]
        assert fates == [plan.drops(i) for i in range(200)]
        # Order independence: querying out of order changes nothing.
        assert fates[120] == plan.drops(120)
        assert any(fates) and not all(fates)
        # A different seed redraws the schedule.
        other = [FaultPlan(seed=8, drop_rate=0.3).drops(i) for i in range(200)]
        assert other != fates

    def test_delay_magnitude_and_timeout_equivalence(self):
        plan = FaultPlan(seed=1, delay_rate=0.5, delay_ms=40.0, timeout_ms=100.0)
        delays = [plan.delay_of(i) for i in range(100)]
        assert set(delays) == {0.0, 40.0}
        # A delay at/past the sender's patience is a drop: the
        # transport surfaces it as unreachable.
        transport, _ = _fabric(2, faults=FaultPlan(
            seed=1, delay_rate=1.0, delay_ms=500.0, timeout_ms=100.0
        ))
        with pytest.raises(UnreachableError):
            transport.send(Vote(src=0, dst=1))
        assert transport.undelivered and not transport.trace

    def test_delays_accumulate_on_the_open_round(self):
        transport, _ = _fabric(2, faults=FaultPlan(
            seed=1, delay_rate=1.0, delay_ms=25.0, timeout_ms=1_000.0
        ))
        trace = transport.begin("cleanup", 0)
        transport.send(Vote(src=0, dst=1))
        transport.send(SyncBroadcast(src=0, dst=1))
        transport.end(trace)
        assert trace.delay_ms == 50.0
        assert transport.total_delay_ms == 50.0


class TestPartitions:
    def test_partition_severs_only_its_edges_during_its_window(self):
        part = Partition.separating({0}, {1}, start=0, stop=4)
        transport, _ = _fabric(3, faults=FaultPlan(partitions=(part,)))
        with pytest.raises(UnreachableError):
            transport.send(Vote(src=0, dst=1))  # event 1: severed
        transport.send(Vote(src=0, dst=2))  # other edge unaffected
        transport.send(Vote(src=2, dst=1))
        # Events advanced past the window: the partition healed.
        transport.send(Vote(src=0, dst=1))
        assert len(transport.trace) == 3

    def test_separating_covers_all_cross_edges(self):
        part = Partition.separating({0, 1}, {2, 3})
        assert part.edges == frozenset({(0, 2), (0, 3), (1, 2), (1, 3)})


class TestCrashStop:
    def test_down_site_is_unreachable_and_recovers(self):
        transport, endpoints = _fabric(2)
        transport.crash(1)
        with pytest.raises(UnreachableError):
            transport.send(Vote(src=0, dst=1))
        assert not endpoints[1].received
        transport.recover(1)
        transport.send(Vote(src=0, dst=1))
        assert len(endpoints[1].received) == 1

    def test_crashed_sender_cannot_send(self):
        transport, _ = _fabric(2)
        transport.crash(0)
        with pytest.raises(UnreachableError):
            transport.send(Vote(src=0, dst=1))

    def test_plan_crash_fires_after_handling_the_fatal_message(self):
        transport, endpoints = _fabric(2, faults=FaultPlan(crash_after={1: 2}))
        transport.send(Vote(src=0, dst=1))
        with pytest.raises(UnreachableError):
            transport.send(Vote(src=0, dst=1))  # handled, then crash
        # The fatal message WAS handled: its state change happened.
        assert len(endpoints[1].received) == 2
        assert transport.is_down(1)


def _micro_cluster(num_sites=3, validate=True, concurrent=False, **kwargs):
    workload = MicroWorkload(
        num_items=18,
        refill=12,
        num_sites=num_sites,
        initial_qty="refill",
        **kwargs,
    )
    build = workload.build_concurrent if concurrent else workload.build_homeostasis
    return workload, build(strategy="equal-split", validate=validate)


class TestClusterFaults:
    def test_survivors_commit_while_closures_touching_crash_fail(self):
        workload, cluster = _micro_cluster()
        rng = random.Random(0)
        cluster.crash_site(2)

        committed = refused = origin_down = 0
        for _ in range(300):
            site = rng.randrange(3)
            req = workload.next_request(rng, site=site)
            try:
                cluster.submit(req.tx_name, req.params)
                committed += 1
            except Unavailable as exc:
                if exc.sites == frozenset({2}) and site == 2:
                    origin_down += 1
                else:
                    refused += 1
        assert committed > 0, "surviving sites stopped committing"
        assert origin_down > 0 and refused > 0
        # Refusals were fast (known-down): no message ever targeted
        # the crashed site.
        assert all(m.dst != 2 and m.src != 2 for m in cluster.transport.trace)

    def test_midround_timeout_aborts_cleanly_and_retry_succeeds(self):
        workload, cluster = _micro_cluster(validate=True)

        # Find a request that violates (drives a negotiation), using a
        # fault-free twin driven through the identical request
        # sequence; every non-violating request is replayed on the
        # real cluster so both reach the violation with equal state.
        twin_workload, twin = _micro_cluster(validate=False)
        twin_rng = random.Random(1)
        violating = None
        for _ in range(400):
            req = twin_workload.next_request(twin_rng, site=twin_rng.randrange(3))
            if twin.submit(req.tx_name, req.params).synced:
                violating = req
                break
            cluster.submit(req.tx_name, req.params)
        assert violating is not None

        # Now crash a participant *mid-round* via the plan: the next
        # message any site handles kills it -- which will be during the
        # violating round's announce/sync prefix.
        before_treaties = {
            sid: {c.pretty() for c in server.local_treaty.constraints}
            for sid, server in cluster.sites.items()
        }
        before_negotiations = cluster.stats.negotiations
        peer = next(s for s in cluster.site_ids if s != violating.site)
        handled = cluster.transport._handled.get(peer, 0)
        cluster.transport.faults = FaultPlan(crash_after={peer: handled + 1})
        with pytest.raises(Unavailable):
            cluster.submit(violating.tx_name, violating.params)
        assert cluster.transport.is_down(peer)
        assert cluster.transport.aborted_rounds(), "round not marked aborted"
        assert cluster.stats.negotiations == before_negotiations
        assert cluster.stats.timeouts >= 1
        # No survivor's treaty changed: the round aborted before any
        # install.
        for sid, server in cluster.sites.items():
            if sid != peer:
                assert {
                    c.pretty() for c in server.local_treaty.constraints
                } == before_treaties[sid]

        # Recovery: WAL replay + rejoin (validate asserts identical
        # treaty + H1/H2), then the same transaction succeeds.
        cluster.transport.faults = None
        participants = cluster.recover_site(peer)
        assert peer in participants
        result = cluster.submit(violating.tx_name, violating.params)
        assert result.synced
        assert cluster.stats.recoveries == 1

    def test_recovered_treaty_identical_after_other_sites_negotiated(self):
        """Negotiations among surviving sites must not invalidate the
        crashed site's WAL: rounds touching its factors are refused,
        so its replayed treaty still matches the treaty table."""
        workload, cluster = _micro_cluster()
        rng = random.Random(2)
        for _ in range(150):  # warm up, install a few treaties
            req = workload.next_request(rng, site=rng.randrange(3))
            cluster.submit(req.tx_name, req.params)
        cluster.crash_site(0)
        for _ in range(200):  # survivors keep going where they can
            req = workload.next_request(rng, site=rng.randrange(3))
            try:
                cluster.submit(req.tx_name, req.params)
            except Unavailable:
                pass
        # validate mode asserts replayed == treaty table entry (and
        # H1/H2) inside recover_site; reaching here is the assertion.
        cluster.recover_site(0)
        req = workload.next_request(rng, site=0)
        cluster.submit(req.tx_name, req.params)

    def test_recovered_escrow_counters_match_fresh_lowering(self):
        """WAL replay plus the store resync must leave the recovered
        site's escrow counters identical to lowering its treaty
        freshly on the recovered state -- headroom consumed before the
        crash lives in the durable store, never in the (volatile)
        account."""
        from repro.logic.compile import lower_to_escrow
        from repro.protocol.site import clause_slack

        workload, cluster = _micro_cluster()
        rng = random.Random(3)
        for _ in range(150):
            req = workload.next_request(rng, site=rng.randrange(3))
            cluster.submit(req.tx_name, req.params)
        cluster.crash_site(1)
        assert cluster.sites[1].escrow is None  # dropped with the crash
        for _ in range(100):
            req = workload.next_request(rng, site=rng.randrange(3))
            try:
                cluster.submit(req.tx_name, req.params)
            except Unavailable:
                pass
        cluster.recover_site(1)
        server = cluster.sites[1]
        assert server.escrow is not None
        server.escrow.settle()
        program = server.escrow.program
        # Same (memoized) lowering as a fresh install of the replayed
        # treaty, and exactly the slack a fresh lowering would grant.
        assert program is lower_to_escrow(tuple(server.local_treaty.constraints))
        assert server.escrow.headroom == [
            clause_slack(row, server.engine.peek) for row in program.rows
        ]
        # (The engine epoch may have moved again during the rejoin
        # synchronization; the lazy per-commit resync covers that.)
        # The recovered account keeps enforcing (validate mode runs
        # the compiled oracle next to it).
        req = workload.next_request(rng, site=1)
        cluster.submit(req.tx_name, req.params)

    def test_both_sides_of_a_partition_keep_committing_locally(self):
        """A network partition (severed edges, no crash: every site is
        alive) lets *both* sides keep committing non-violating
        transactions; only cross-partition negotiations time out, and
        they abort cleanly without installing anything."""
        workload, cluster = _micro_cluster(validate=False)
        # Sever site 2 from sites {0, 1} for a long event window.
        cluster.transport.faults = FaultPlan(
            partitions=(Partition.separating({0, 1}, {2}),)
        )
        rng = random.Random(6)
        committed = {0: 0, 1: 0, 2: 0}
        timed_out = 0
        for _ in range(300):
            site = rng.randrange(3)
            req = workload.next_request(rng, site=site)
            try:
                cluster.submit(req.tx_name, req.params)
                committed[site] += 1
            except Unavailable:
                timed_out += 1
        assert all(committed[s] > 0 for s in (0, 1, 2)), committed
        assert timed_out > 0
        assert cluster.stats.timeouts == timed_out
        assert cluster.transport.aborted_rounds()
        # A partition is not a crash: nobody is marked down, and
        # healing it needs no WAL replay or rejoin round.
        assert not cluster.transport.down
        cluster.transport.faults = None
        req = workload.next_request(rng, site=2)
        cluster.submit(req.tx_name, req.params)

    def test_force_synchronize_refuses_during_outage(self):
        _, cluster = _micro_cluster()
        cluster.crash_site(1)
        with pytest.raises(Unavailable):
            cluster.force_synchronize()
        cluster.recover_site(1)
        cluster.force_synchronize()


class Test2PCBlocks:
    def test_2pc_blocks_wholesale_and_leaves_no_partial_state(self):
        workload = MicroWorkload(num_items=10, refill=8, num_sites=3)
        cluster = workload.build_2pc()
        cluster.submit("Buy@s0", {"item": 1})
        before = {s: cluster.replica_state(s) for s in (0, 1)}
        cluster.crash_site(2)
        for origin in (0, 1):
            with pytest.raises(Unavailable):
                cluster.submit(f"Buy@s{origin}", {"item": 2})
        # The refused transactions left no trace on any live replica.
        for s in (0, 1):
            assert cluster.replica_state(s) == before[s]
        cluster.recover_site(2)
        cluster.submit("Buy@s1", {"item": 2})
        assert cluster.replica_state(0) == cluster.replica_state(2)

    def test_2pc_aborts_cleanly_on_crash_discovered_mid_prepare(self):
        workload = MicroWorkload(num_items=10, refill=8, num_sites=3)
        cluster = workload.build_2pc()
        cluster.submit("Buy@s0", {"item": 3})
        state_before = {s: cluster.replica_state(s) for s in cluster.site_ids}
        # Site 2 dies on the prepare it is about to receive: handled,
        # but its vote never arrives.  Order is deterministic (cohorts
        # prepared in site order: 1 then 2).
        handled = cluster.transport._handled.get(2, 0)
        cluster.transport.faults = FaultPlan(crash_after={2: handled + 1})
        with pytest.raises(Unavailable):
            cluster.submit("Buy@s0", {"item": 3})
        # Origin rolled back; cohort 1's staged write was discarded by
        # the abort decision.  Nobody moved.
        for s in (0, 1):
            assert cluster.replica_state(s) == state_before[s]
        assert cluster.transport.aborted_rounds()


class TestConcurrentFaults:
    def test_window_degrades_per_group(self):
        workload, cluster = _micro_cluster(concurrent=True, validate=False)
        assert isinstance(cluster, ConcurrentCluster)
        cluster.crash_site(2)
        # A window mixing all three origins: site-2 submissions fail
        # fast, the rest of the window executes.
        requests, timestamps = [], []
        rng = random.Random(4)
        for i, site in enumerate([0, 1, 2, 0, 1, 2]):
            req = workload.next_request(rng, site=site)
            requests.append((req.tx_name, req.params))
            timestamps.append(i)
        result = cluster.submit_window(requests, timestamps=timestamps)
        by_site = {}
        for out, (_name, _params) in zip(result.outcomes, requests):
            by_site.setdefault(out.site, []).append(out)
        assert all(out.failed for out in by_site[2])
        assert all(not out.failed for out in by_site[0] + by_site[1])

    def test_violating_window_fails_only_groups_needing_the_crash(self):
        workload, cluster = _micro_cluster(concurrent=True, validate=False)
        rng = random.Random(5)
        # Exhaust budgets until windows start negotiating.
        for _ in range(40):
            reqs = [workload.next_request(rng, rng.randrange(3)) for _ in range(6)]
            cluster.submit_window([(r.tx_name, r.params) for r in reqs])
        cluster.crash_site(2)
        sent_before_crash = len(cluster.transport.trace)
        failed = completed = 0
        for _ in range(40):
            reqs = [workload.next_request(rng, rng.randrange(2)) for _ in range(6)]
            result = cluster.submit_window([(r.tx_name, r.params) for r in reqs])
            for out in result.outcomes:
                if out.failed:
                    failed += 1
                else:
                    completed += 1
        # Violations kept happening and their closures (which span the
        # crashed site's treaty factors) were refused, while purely
        # local commits continued.
        assert completed > 0 and failed > 0
        # Groups needing the crashed site were refused up front: no
        # message sent while it was down ever targeted it.
        assert all(
            m.dst != 2 and m.src != 2
            for m in cluster.transport.trace[sent_before_crash:]
        )
        cluster.recover_site(2)
        reqs = [workload.next_request(rng, rng.randrange(3)) for _ in range(6)]
        result = cluster.submit_window([(r.tx_name, r.params) for r in reqs])
        assert all(not out.failed for out in result.outcomes)


class TestSimulatorAvailability:
    def test_availability_gap_and_recovery(self):
        point = dict(
            clients_per_replica=3,
            num_items=60,
            crash_at_ms=800.0,
            outage_ms=1_500.0,
            duration_ms=3_200.0,
            seed=0,
        )
        homeo = run_faults("homeo", validate=True, **point)
        twopc = run_faults("2pc", **point)
        window = (800.0, 2_300.0)
        assert homeo.recoveries == 1 and twopc.recoveries == 1
        assert homeo.availability_between(*window) > 0.5
        assert twopc.availability_between(*window) == 0.0
        assert homeo.availability > twopc.availability
        assert homeo.timeouts > 0
        assert homeo.recovery_ms > 0.0
        # Before the crash both modes are fully available.
        assert homeo.availability_between(0.0, 800.0) == 1.0
        assert twopc.availability_between(0.0, 800.0) == 1.0

    def test_fault_free_run_unchanged(self):
        """No fault events -> byte-identical results to the plain
        driver (the fault machinery must cost nothing when unused)."""
        from repro.sim.experiments import run_micro

        base = run_micro("homeo", num_items=80, max_txns=400, seed=0)
        assert base.failed == 0 and base.timeouts == 0 and base.recoveries == 0
