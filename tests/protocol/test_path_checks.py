"""Runtime tests for the path-sensitive treaty-check tier.

Covers the per-site check-kind counters, the partitioned subset check
against the full oracle, the WAL round-trip of the path table, the
cluster-level classifier statistics, and -- as the property-level
safety net -- a Hypothesis differential oracle: random micro runs in
validate mode, where every bypassed or partitioned check is executed
next to the full treaty check and any disagreement raises
:class:`PathCheckDivergence`.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.classify import PathCheckDivergence  # noqa: F401 (oracle)
from repro.analysis.symbolic import build_symbolic_table
from repro.lang.parser import parse_transaction
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.terms import ObjT
from repro.protocol.site import SiteServer
from repro.storage.wal import (
    decode_recorded_paths,
    encode_local_treaty,
)
from repro.treaty.table import LocalTreaty
from repro.workloads.micro import MicroWorkload

DRAIN_SRC = """
transaction Drain() {
  v := read(x);
  write(x = v - 1)
}
"""

PROBE_SRC = """
transaction Probe() {
  v := read(x);
  print(v)
}
"""

BUYP_SRC = """
transaction BuyP(i) {
  v := read(qty(@i));
  write(qty(@i) = v - 1)
}
"""


def _le(coeffs, bound):
    expr = LinearExpr.make({ObjT(name): c for name, c in coeffs.items()})
    return LinearConstraint.make(expr, "<=", bound)


def _server(*sources, constraints=None, validate=True):
    server = SiteServer(site_id=0, locate=lambda name: 0)
    for src in sources:
        server.catalog.register(build_symbolic_table(parse_transaction(src)))
    if constraints is not None:
        server.validate_escrow = validate
        server.install_treaty(LocalTreaty(site=0, constraints=list(constraints)))
    return server


class TestCheckStatsCounters:
    def test_free_path_skips_check_and_counts(self):
        server = _server(DRAIN_SRC, constraints=[_le({"y": 1}, 10)])
        server.engine.poke("x", 5)
        result = server.execute("Drain")
        assert result.committed
        assert server.engine.peek("x") == 4
        stats = server.check_stats
        assert stats["free"] == 1
        assert stats["checked"] == 1
        assert stats["clauses_in_scope"] == 0

    def test_read_only_path_is_free(self):
        server = _server(PROBE_SRC, constraints=[_le({"x": 1}, 10)])
        assert server.execute("Probe").committed
        assert server.check_stats["free"] == 1

    def test_monotone_safe_path_counts_absorbed(self):
        server = _server(DRAIN_SRC, constraints=[_le({"x": 1}, 10)])
        server.engine.poke("x", 3)
        assert server.execute("Drain").committed
        stats = server.check_stats
        assert stats["absorbed"] == 1
        assert stats["clauses_in_scope"] == 0

    def test_partition_counts_clauses_in_scope(self):
        # x >= 1 plus an unrelated clause: the drain path's subset
        # check covers exactly one of the two installed clauses.
        server = _server(
            DRAIN_SRC, constraints=[_le({"x": -1}, -1), _le({"y": 1}, 10)]
        )
        server.engine.poke("x", 5)
        assert server.execute("Drain").committed
        stats = server.check_stats
        assert stats["partition"] == 1
        assert stats["clauses_in_scope"] == 1

    def test_full_counts_whole_treaty(self):
        server = _server(
            BUYP_SRC,
            constraints=[_le({"qty[0]": -1}, 0), _le({"qty[1]": -1}, 0)],
        )
        server.engine.poke("qty[0]", 4)
        server.engine.poke("qty[1]", 4)
        assert server.execute("BuyP", params={"i": 0}).committed
        stats = server.check_stats
        assert stats["full"] == 1
        assert stats["clauses_in_scope"] == 2

    def test_counters_sum_to_checked(self):
        server = _server(
            DRAIN_SRC, PROBE_SRC, constraints=[_le({"x": -1}, -1)]
        )
        server.engine.poke("x", 10)
        for _ in range(4):
            server.execute("Drain")
            server.execute("Probe")
        stats = server.check_stats
        assert stats["checked"] == 8
        assert (
            stats["free"] + stats["absorbed"] + stats["partition"] + stats["full"]
            == stats["checked"]
        )


class TestPartitionAgainstOracle:
    def _compiled_server(self, constraints):
        """A server forced onto the compiled (non-escrow) check path,
        so the partitioned subset check itself is what runs."""
        server = _server(DRAIN_SRC, constraints=constraints)
        server.escrow = None
        return server

    def test_partition_detects_violation(self):
        server = self._compiled_server([_le({"x": -1}, -1)])
        server.engine.poke("x", 2)
        assert server.execute("Drain").committed  # x: 2 -> 1
        result = server.execute("Drain")  # x: 1 -> 0 violates x >= 1
        assert result.violated and not result.committed
        assert server.engine.peek("x") == 1  # aborted attempt rolled back
        assert result.violated_objects == frozenset({"x"})

    def test_partition_agrees_with_full_check_in_validate_mode(self):
        # validate_escrow is on: any subset/full disagreement would
        # raise PathCheckDivergence out of execute().
        server = self._compiled_server([_le({"x": -1}, -1), _le({"y": 1}, 5)])
        server.engine.poke("x", 6)
        for _ in range(6):
            server.execute("Drain")
        assert server.check_stats["partition"] == 6

    def test_unrelated_clause_violation_is_not_blamed(self):
        # The subset check must not charge the drain path for the
        # y-clause; with y already past its bound before the commit,
        # H2 is broken for y, but the drain's own subset still holds.
        server = _server(DRAIN_SRC, constraints=[_le({"x": -1}, -1)])
        server.engine.poke("x", 4)
        assert server.execute("Drain").committed


class TestWalPathRecords:
    def _paths(self):
        server = _server(
            DRAIN_SRC, PROBE_SRC, constraints=[_le({"x": -1}, -1)]
        )
        return server, server.path_checks

    def test_encode_decode_round_trip(self):
        server, paths = self._paths()
        treaty = server.local_treaty
        record = encode_local_treaty(treaty, headroom=None, paths=paths)
        assert decode_recorded_paths(record) == paths

    def test_record_without_paths_decodes_to_none(self):
        server, _ = self._paths()
        record = encode_local_treaty(server.local_treaty)
        assert decode_recorded_paths(record) is None

    def test_install_logs_paths_to_wal(self):
        server, paths = self._paths()
        install_records = [
            rec for rec in server.wal.records() if rec["kind"] == "treaty_install"
        ]
        assert install_records
        assert decode_recorded_paths(install_records[-1]) == paths


class TestClusterClassifier:
    def _run(self, audit_fraction, txns=200, seed=7):
        workload = MicroWorkload(
            num_items=6,
            refill=40,
            num_sites=2,
            audit_fraction=audit_fraction,
        )
        cluster = workload.build_homeostasis(
            strategy="equal-split", seed=0, validate=True
        )
        rng = random.Random(seed)
        for _ in range(txns):
            request = workload.next_request(rng)
            cluster.submit(request.tx_name, request.params)
        return workload, cluster

    def test_audit_probes_are_free(self):
        _, cluster = self._run(audit_fraction=0.5)
        free = cluster.free_transactions()
        assert {"Audit@s0", "Audit@s1"} <= free
        assert "Buy@s0" not in free

    def test_classifier_stats_are_consistent(self):
        _, cluster = self._run(audit_fraction=0.5)
        stats = cluster.classifier_stats()
        assert stats["checked"] > 0
        assert (
            stats["free"] + stats["absorbed"] + stats["partition"] + stats["full"]
            == stats["checked"]
        )
        assert 0.0 < stats["free_ratio"] <= 1.0
        assert stats["checks_per_commit"] >= 0.0

    def test_pure_buy_mix_has_no_free_traffic_at_home(self):
        _, cluster = self._run(audit_fraction=0.0)
        assert "Audit@s0" not in cluster.free_transactions()


class TestDifferentialOracle:
    """Random micro runs in validate mode: every FREE bypass,
    monotone-safe skip and partitioned subset check is executed next
    to the full treaty check inside ``SiteServer.execute`` and any
    disagreement raises ``PathCheckDivergence``.  The property also
    pins validate mode as observationally silent: the final database
    matches a plain (non-validating) run of the same request stream.
    """

    @settings(max_examples=20, deadline=None)
    @given(
        num_items=st.integers(min_value=2, max_value=6),
        audit=st.sampled_from([0.0, 0.25, 0.5]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_validate_mode_never_diverges(self, num_items, audit, seed):
        workload = MicroWorkload(
            num_items=num_items,
            refill=20,
            num_sites=2,
            audit_fraction=audit,
        )
        validated = workload.build_homeostasis(
            strategy="equal-split", seed=0, validate=True
        )
        plain = workload.build_homeostasis(strategy="equal-split", seed=0)
        rng_v, rng_p = random.Random(seed), random.Random(seed)
        for _ in range(40):
            request = workload.next_request(rng_v)
            validated.submit(request.tx_name, request.params)
            mirror = workload.next_request(rng_p)
            plain.submit(mirror.tx_name, mirror.params)
        for name in workload.initial_db:
            site = workload.locate(name)
            assert validated.sites[site].engine.peek(name) == plain.sites[
                site
            ].engine.peek(name)
