"""Paxos Commit decision phase and starvation-free arbitration.

Covers the acceptance criteria of the non-blocking negotiation layer:

- a NegotiationSpec is frozen and validates its policy, acceptor-set
  size (2F+1), timeout, and credit budget at construction;
- the credit ledger accrues on losses (capped), spends on wins, counts
  only contested elections, and reports per-site fairness numbers;
- acceptor state (promises, accepted verdict vectors) is WAL-logged
  before any ack leaves the site and survives crash + replay, and
  stale ballots are refused;
- the driver's decision reaches a quorum at ballot 0, and a survivor
  finishes a crashed coordinator's round from the acceptors' logged
  state at ballot 1 -- or proves it never became durable and aborts;
- a coordinator crash at *every* message boundary of the decision
  (before any Phase2a, after each Phase2b, during survivor
  completion) either commits through a survivor or aborts cleanly,
  with the validate-mode oracle on throughout;
- credit arbitration changes who wins ties, never which outcomes
  commit (Hypothesis property over the concurrent kernel).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.faults import FaultPlan
from repro.protocol.homeostasis import Unavailable
from repro.protocol.messages import Complete, Phase2a
from repro.protocol.paxos_commit import (
    CreditLedger,
    NegotiationSpec,
    QuorumUnreachable,
)
from repro.sim.experiments import run_winner_crash
from repro.workloads.micro import MicroWorkload


def _negotiated_cluster(
    num_sites=3,
    validate=True,
    concurrent=False,
    negotiation=None,
    num_items=18,
    refill=12,
):
    workload = MicroWorkload(
        num_items=num_items,
        refill=refill,
        num_sites=num_sites,
        initial_qty="refill",
    )
    build = workload.build_concurrent if concurrent else workload.build_homeostasis
    cluster = build(
        strategy="equal-split",
        validate=validate,
        negotiation=negotiation or NegotiationSpec(),
    )
    return workload, cluster


def _drive_to_violation(real, num_sites=3, seed=1, tries=600):
    """Find a request that negotiates over the *full* site set, using
    a fault-free twin driven through the identical sequence; every
    other request is replayed on ``real`` so both clusters reach the
    violation with equal state.  Returns the request and the twin's
    result (its participant closure sizes the crash arithmetic: a
    3-site closure hosts the whole 2F+1 acceptor set, so a quorum
    survives any single crash)."""
    twin_workload, twin = _negotiated_cluster(num_sites=num_sites, validate=False)
    rng = random.Random(seed)
    for _ in range(tries):
        req = twin_workload.next_request(rng, site=rng.randrange(num_sites))
        result = twin.submit(req.tx_name, req.params)
        if result.synced and len(result.participants) == num_sites:
            return req, result
        real.submit(req.tx_name, req.params)
    raise AssertionError("no full-closure violating request found")


class TestNegotiationSpec:
    def test_defaults_are_valid_and_frozen(self):
        spec = NegotiationSpec()
        assert spec.policy == "priority"
        assert spec.acceptors == 3
        with pytest.raises(AttributeError):
            spec.policy = "credit"  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "roulette"},
            {"acceptors": 4},  # even: not 2F+1
            {"acceptors": -3},  # odd but not positive
            {"quorum_timeout_ms": 0.0},
            {"credit_unit": 0},
            {"credit_unit": 3, "credit_cap": 2},
        ],
    )
    def test_invalid_specs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NegotiationSpec(**kwargs)


class TestCreditLedger:
    def test_priority_policy_never_bids_credit(self):
        ledger = CreditLedger(NegotiationSpec(policy="priority"))
        for _ in range(5):
            ledger.record_election(0, [1, 2])
        # Streaks and losses are still metered (the fairness report
        # must be comparable across policies) but nothing is bid.
        assert ledger.bid_credit(1) == 0
        assert ledger.max_consecutive_losses() == 5

    def test_losses_accrue_capped_and_wins_spend(self):
        spec = NegotiationSpec(policy="credit", credit_unit=2, credit_cap=5)
        ledger = CreditLedger(spec)
        ledger.record_election(0, [1, 2])
        assert ledger.bid_credit(1) == 2 and ledger.bid_credit(2) == 2
        assert ledger.bid_credit(0) == 0  # the winner holds nothing
        for _ in range(4):
            ledger.record_election(0, [1])
        assert ledger.bid_credit(1) == 5  # capped at credit_cap
        ledger.record_election(1, [0])
        assert ledger.bid_credit(1) == 0  # winning spends the balance

    def test_only_contested_elections_count(self):
        ledger = CreditLedger(NegotiationSpec(policy="credit"))
        ledger.record_election(0, [])  # unopposed: not an election
        assert ledger.elections == 0
        ledger.record_election(0, [1])
        assert ledger.elections == 1

    def test_stats_report_per_site_fairness(self):
        ledger = CreditLedger(NegotiationSpec(policy="credit"))
        for _ in range(3):
            ledger.record_election(0, [1])
        ledger.record_election(1, [0])
        stats = ledger.stats()
        assert stats["policy"] == "credit"
        assert stats["elections"] == 4
        assert stats["max_consecutive_losses"] == 3
        site1 = stats["per_site"][1]
        assert site1["wins"] == 1 and site1["losses"] == 3
        assert site1["max_consecutive_losses"] == 3
        assert site1["credit"] == 0  # spent on the win
        # Site 1 waited 3 losses before its win: that is the sample
        # behind both percentiles.
        assert site1["wait_p50"] == 3.0 and site1["wait_p99"] == 3.0


class TestAcceptorState:
    def test_accept_is_wal_logged_before_ack_and_replays(self):
        _, cluster = _negotiated_cluster(validate=False)
        site = cluster.sites[1]
        verdicts = ((0, True), (1, True), (2, True))
        assert site.paxos_accept(7, 0, verdicts)
        assert site.paxos_promise(9, 3) is None  # nothing accepted yet
        # Crash: the volatile dicts are lost; replay rebuilds them from
        # the records appended before the acks left the site.
        site.paxos_promised.clear()
        site.paxos_accepted.clear()
        site._replay_paxos_state()
        assert site.paxos_accepted[7] == (0, verdicts)
        assert site.paxos_promised[7] == 0
        assert site.paxos_promised[9] == 3

    def test_stale_ballots_are_refused(self):
        _, cluster = _negotiated_cluster(validate=False)
        site = cluster.sites[2]
        assert site.paxos_promise(4, 3) is None
        assert not site.paxos_accept(4, 1, ((0, True),))  # below promise
        assert site.paxos_promise(4, 2) is None  # stale re-promise
        assert 4 not in site.paxos_accepted
        assert site.paxos_accept(4, 3, ((0, True),))
        # The promise at the accepted ballot reports the verdicts.
        assert site.paxos_promise(4, 3) == ((0, True),)


class TestDriver:
    def test_decide_reaches_quorum_and_logs_everywhere(self):
        _, cluster = _negotiated_cluster(validate=False)
        trace = cluster.transport.begin("cleanup", 0)
        acks = cluster._paxos.decide(0, trace.index, [0, 1, 2])
        cluster.transport.end(trace)
        assert acks == 3
        verdicts = ((0, True), (1, True), (2, True))
        for sid in (0, 1, 2):
            assert cluster.sites[sid].paxos_accepted[trace.index] == (0, verdicts)

    def test_survivor_completes_from_logged_state(self):
        _, cluster = _negotiated_cluster(validate=False)
        trace = cluster.transport.begin("cleanup", 0)
        cluster._paxos.decide(0, trace.index, [0, 1, 2])
        cluster.transport.crash(0)
        committed = cluster._paxos.complete_as_survivor(
            1, trace.index, [0, 1, 2], tx_name="buy"
        )
        assert committed is True
        # The survivor re-drove the accepts at ballot 1 and announced.
        assert cluster.sites[2].paxos_accepted[trace.index][0] == 1
        completes = [m for m in cluster.transport.trace if isinstance(m, Complete)]
        assert [(m.src, m.dst) for m in completes] == [(1, 2)]
        cluster.transport.abort(trace)

    def test_survivor_aborts_when_nothing_was_logged(self):
        _, cluster = _negotiated_cluster(validate=False)
        trace = cluster.transport.begin("cleanup", 0)
        cluster.transport.crash(0)
        # No acceptor ever logged an accept for this round: with the
        # ballot-1 promises in hand, ballot 0 can never complete behind
        # the survivor's back, so declaring it undecided is safe.
        with pytest.raises(QuorumUnreachable):
            cluster._paxos.complete_as_survivor(1, trace.index, [0, 1, 2])
        cluster.transport.abort(trace)


class TestWinnerCrashBoundaries:
    """Crash the negotiation's winner at every decision-phase message
    boundary.  The arithmetic: during the violating round's sync the
    origin handles one ack per peer (``p - 1`` messages with ``p``
    participants), then one Phase2b per remote acceptor ack -- so
    ``crash_after = handled + (p - 1) + k`` kills it right after the
    k-th Phase2b (k=0: before the decision phase ever starts)."""

    def _crash_origin_at(self, k, seed=1):
        workload, cluster = _negotiated_cluster(validate=True)
        violating, twin_result = _drive_to_violation(cluster, seed=seed)
        participants = twin_result.participants
        origin = violating.site
        handled = cluster.transport._handled.get(origin, 0)
        cluster.transport.faults = FaultPlan(
            crash_after={origin: handled + (len(participants) - 1) + k}
        )
        return workload, cluster, violating, origin

    def test_crash_before_decision_aborts_cleanly(self):
        _, cluster, violating, origin = self._crash_origin_at(k=0)
        before = {
            sid: {c.pretty() for c in server.local_treaty.constraints}
            for sid, server in cluster.sites.items()
        }
        with pytest.raises(Unavailable):
            cluster.submit(violating.tx_name, violating.params)
        assert cluster.transport.is_down(origin)
        # Nothing was decided: no survivor treaty changed, nothing to
        # catch up at recovery, and the retry commits.
        for sid, server in cluster.sites.items():
            if sid != origin:
                assert {
                    c.pretty() for c in server.local_treaty.constraints
                } == before[sid]
        assert not cluster._missed_runs
        cluster.transport.faults = None
        cluster.recover_site(origin)
        assert cluster.submit(violating.tx_name, violating.params).synced

    @pytest.mark.parametrize("k", [1, 2])
    def test_crash_mid_quorum_completes_via_survivor(self, k):
        _, cluster, violating, origin = self._crash_origin_at(k=k)
        result = cluster.submit(violating.tx_name, violating.params)
        # The round committed without its coordinator: a survivor
        # finished the decision from the acceptors' logged state and
        # the install ran over the live participants (the validate
        # oracle checked H1/H2 and treaty agreement along the way).
        assert result.synced
        assert cluster.transport.is_down(origin)
        assert origin not in result.participants
        assert len(result.participants) >= 1
        assert any(isinstance(m, Complete) for m in cluster.transport.trace)
        # The crashed coordinator re-runs T' deterministically at
        # recovery and rejoins with the treaty-table treaty (asserted
        # by validate mode inside recover_site).
        assert origin in cluster._missed_runs
        cluster.transport.faults = None
        cluster.recover_site(origin)
        assert not cluster._missed_runs

    def test_acceptor_crash_after_logging_still_commits(self):
        """An *acceptor* (not the coordinator) dying right after it
        logged its accept: the quorum forms from the rest, the round
        commits over the live participants, and the dead acceptor
        catches up at recovery."""
        workload, cluster = _negotiated_cluster(validate=True)
        violating, twin_result = _drive_to_violation(cluster, seed=1)
        origin = violating.site
        acceptor = next(
            s for s in sorted(twin_result.participants)[:3] if s != origin
        )
        # A fault-free negotiated probe driven through the identical
        # sequence measures when the acceptor handles its Phase2a.
        _, probe = _negotiated_cluster(validate=False)
        _drive_to_violation(probe, seed=1)
        start = len(probe.transport.trace)
        probe.submit(violating.tx_name, violating.params)
        inbound = [
            m for m in probe.transport.trace[start:] if m.dst == acceptor
        ]
        fatal = next(
            i for i, m in enumerate(inbound) if isinstance(m, Phase2a)
        ) + 1
        handled = cluster.transport._handled.get(acceptor, 0)
        cluster.transport.faults = FaultPlan(
            crash_after={acceptor: handled + fatal}
        )
        result = cluster.submit(violating.tx_name, violating.params)
        assert result.synced
        assert cluster.transport.is_down(acceptor)
        assert acceptor not in result.participants
        # Its accept is durable even though the ack never arrived.
        assert cluster.sites[acceptor].paxos_accepted
        assert acceptor in cluster._missed_runs
        cluster.transport.faults = None
        cluster.recover_site(acceptor)
        assert not cluster._missed_runs
        req = workload.next_request(random.Random(9), site=acceptor)
        assert cluster.submit(req.tx_name, req.params) is not None

    def test_double_crash_aborts_cleanly_or_commits(self):
        """Coordinator crashes mid-quorum, then the first completing
        survivor crashes mid-completion: the next candidate either
        finishes from the same durable state or proves it cannot reach
        a quorum and aborts cleanly -- never a divergent install."""
        _, cluster = _negotiated_cluster(validate=True)
        violating, twin_result = _drive_to_violation(cluster, seed=1)
        participants = twin_result.participants
        origin = violating.site
        survivor = min(s for s in participants if s != origin)
        # The first survivor handles exactly one completion message
        # (the ballot-1 Phase2b); everything before that -- announce,
        # sync, its own ballot-0 Phase2a -- it handles identically in
        # the fault-free flow, which a probe cluster measures.
        _, probe = _negotiated_cluster(validate=False)
        _drive_to_violation(probe, seed=1)
        start = len(probe.transport.trace)
        probe.submit(violating.tx_name, violating.params)
        inbound = [
            m for m in probe.transport.trace[start:] if m.dst == survivor
        ]
        upto_accept = next(
            i for i, m in enumerate(inbound) if isinstance(m, Phase2a)
        ) + 1
        cluster.transport.faults = FaultPlan(
            crash_after={
                origin: cluster.transport._handled.get(origin, 0)
                + (len(participants) - 1)
                + 1,
                survivor: cluster.transport._handled.get(survivor, 0)
                + upto_accept
                + 1,
            }
        )
        before = {
            sid: {c.pretty() for c in server.local_treaty.constraints}
            for sid, server in cluster.sites.items()
        }
        try:
            result = cluster.submit(violating.tx_name, violating.params)
        except Unavailable:
            # Only one site is left: no quorum of the 3-acceptor set
            # remains, so the round aborts with every treaty intact.
            live = set(cluster.site_ids) - cluster.transport.down
            for sid in live:
                assert {
                    c.pretty()
                    for c in cluster.sites[sid].local_treaty.constraints
                } == before[sid]
        else:
            assert result.synced
        assert cluster.transport.is_down(origin)
        # Recovery brings everyone back and the workload continues.
        cluster.transport.faults = None
        for sid in sorted(cluster.transport.down):
            cluster.recover_site(sid)
        assert not cluster._missed_runs
        assert cluster.submit(violating.tx_name, violating.params) is not None


class TestConcurrentWinnerCrash:
    def test_window_winner_crash_completes_via_survivor(self):
        """The concurrent kernel's version of the survivable window: a
        single-entry window whose winner crashes after the first
        Phase2b ack still commits through a survivor."""
        _, cluster = _negotiated_cluster(validate=True, concurrent=True)
        twin_workload, twin = _negotiated_cluster(validate=False, concurrent=True)
        rng = random.Random(1)
        violating = None
        for _ in range(600):
            req = twin_workload.next_request(rng, site=rng.randrange(3))
            outcome = twin.submit_window([(req.tx_name, req.params)]).outcomes[0]
            if outcome.synced:
                violating = req
                participants = outcome.participants
                break
            cluster.submit_window([(req.tx_name, req.params)])
        assert violating is not None
        origin = violating.site
        handled = cluster.transport._handled.get(origin, 0)
        cluster.transport.faults = FaultPlan(
            crash_after={origin: handled + (len(participants) - 1) + 1}
        )
        result = cluster.submit_window([(violating.tx_name, violating.params)])
        outcome = result.outcomes[0]
        assert not outcome.failed and outcome.synced
        assert cluster.transport.is_down(origin)
        assert origin not in outcome.participants
        cluster.transport.faults = None
        cluster.recover_site(origin)
        assert not cluster._missed_runs


class TestCreditNeutrality:
    @given(seed=st.integers(0, 2**16), sizes=st.lists(
        st.integers(min_value=2, max_value=6), min_size=1, max_size=3
    ))
    @settings(max_examples=10, deadline=None)
    def test_credit_never_changes_which_outcomes_commit(self, seed, sizes):
        """Arbitration policy moves ties between contenders; it must
        never move a transaction between commit and abort.  Both
        clusters run validate-mode, so the oracle also checks each
        kernel stayed internally consistent while disagreeing on
        winners."""
        clusters = {
            policy: _negotiated_cluster(
                concurrent=True,
                negotiation=NegotiationSpec(policy=policy),
            )[1]
            for policy in ("priority", "credit")
        }
        workload = MicroWorkload(
            num_items=18, refill=12, num_sites=3, initial_qty="refill"
        )
        rng = random.Random(seed)
        for size in sizes:
            window = [
                (req.tx_name, req.params)
                for req in (
                    workload.next_request(rng, site=rng.randrange(3))
                    for _ in range(size)
                )
            ]
            # Default timestamps tie the whole window: the regime
            # where the policies actually pick different winners.
            results = {
                policy: cluster.submit_window(window)
                for policy, cluster in clusters.items()
            }
            assert [o.failed for o in results["priority"].outcomes] == [
                o.failed for o in results["credit"].outcomes
            ]


class TestWinnerCrashExperiment:
    def test_end_to_end_report(self):
        report = run_winner_crash(seed=0)
        for flag in (
            "committed",
            "origin_down_at_completion",
            "origin_excluded",
            "recovered_clean",
            "post_recovery_committed",
        ):
            assert report[flag], f"winner-crash flag {flag} not set: {report}"
        assert report["survivors"] >= 1
        assert report["complete_messages"] >= 1


class TestFairnessFacade:
    def test_fairness_stats_surface_contested_elections(self):
        workload, cluster = _negotiated_cluster(
            concurrent=True,
            negotiation=NegotiationSpec(policy="credit"),
            num_items=6,
            refill=8,
        )
        rng = random.Random(3)
        for _ in range(40):
            window = [
                (req.tx_name, req.params)
                for req in (
                    workload.next_request(rng, site=rng.randrange(3))
                    for _ in range(6)
                )
            ]
            cluster.submit_window(window)
            if cluster.fairness_stats()["elections"] > 0:
                break
        stats = cluster.fairness_stats()
        assert stats["policy"] == "credit"
        assert stats["elections"] > 0, "windows never contested an election"
        assert set(stats["per_site"]) <= set(cluster.site_ids)
        for row in stats["per_site"].values():
            assert {"wins", "losses", "max_consecutive_losses"} <= set(row)
