"""The adaptive reallocation runtime: watermark refreshes and their
arbitration.

Covers the rebalance subsystem's acceptance criteria:

- a commit that burns past the low-watermark triggers a proactive,
  participant-scoped refresh with a real ``RebalanceRequest`` on the
  wire, *before* any violation occurs, and the refresh shifts slack
  toward the hot site (validate mode asserts H1/H2 and untouched
  non-participants at every install, so the global treaty is never
  weakened);
- in a contended window a rebalance desire arbitrates like any other
  negotiation: it loses the election to a higher-priority violator,
  concedes with a wire-level ``VoteReply``, and retries in the next
  wave;
- windows with refreshes interleaved stay serially equivalent.
"""

from repro.lang.interp import evaluate
from repro.protocol.homeostasis import AdaptiveSettings
from repro.protocol.messages import RebalanceRequest, VoteReply
from repro.workloads.micro import MicroWorkload


def _sequential_cluster(**adaptive_kwargs):
    workload = MicroWorkload(
        num_items=2, refill=40, num_sites=2, initial_qty="refill"
    )
    cluster = workload.build_homeostasis(
        strategy="demand",
        validate=True,
        adaptive=AdaptiveSettings(**adaptive_kwargs),
    )
    return workload, cluster


def _drain_until_rebalance(cluster, item=0, limit=60):
    """Alternate single-site purchases until a refresh fires."""
    for i in range(limit):
        outcome = cluster.submit("Buy@s0", {"item": item})
        if outcome.rebalanced:
            return i, outcome
    raise AssertionError(f"no rebalance within {limit} submissions")


class TestWatermarkRefresh:
    def test_refresh_fires_before_any_violation(self):
        _workload, cluster = _sequential_cluster(watermark=0.5)
        _i, outcome = _drain_until_rebalance(cluster)
        # The triggering transaction itself committed locally...
        assert not outcome.synced
        assert outcome.rebalanced == (0, 1)
        # ...the refresh ran as its own negotiation round...
        assert cluster.stats.rebalances == 1
        rounds = [n for n in cluster.transport.negotiations if n.kind == "rebalance"]
        assert len(rounds) == 1
        assert rounds[0].participants == (0, 1)
        # ...and no violation was involved.
        assert cluster.stats.negotiations == 0

    def test_rebalance_request_on_the_wire(self):
        cluster = _sequential_cluster(watermark=0.5)[1]
        _drain_until_rebalance(cluster)
        requests = [
            m for m in cluster.transport.trace if isinstance(m, RebalanceRequest)
        ]
        assert requests, "refresh must announce itself"
        assert requests[0].src == 0 and requests[0].dst == 1
        assert any("qty" in obj for obj in requests[0].objects)

    def test_refresh_shifts_slack_to_the_hot_site(self):
        cluster = _sequential_cluster(watermark=0.5)[1]
        site = cluster.sites[0]
        before = dict(site.install_headroom)
        _drain_until_rebalance(cluster)
        after = site.install_headroom
        # All purchases came from site 0, so the demand-weighted
        # refresh must grant site 0 more headroom than the zero-demand
        # initial split did.
        assert sum(after.values()) > 0
        assert max(after.values()) >= max(before.values())

    def test_message_stats_count_rebalance_traffic(self):
        cluster = _sequential_cluster(watermark=0.5)[1]
        _drain_until_rebalance(cluster)
        stats = cluster.stats.messages
        assert stats.rebalance_requests >= 1
        # A rebalance is a negotiation round in the trace-derived view.
        assert stats.negotiations == cluster.stats.rebalances


class TestContendedRebalance:
    def _contended_window(self):
        """One window where site 1's violation outranks site 0's
        refresh desire: tight budgets make site-1 buys violate while a
        site-0 commit breaches its watermark in the same wave.  The
        violators carry earlier arrival stamps, so the election goes
        to the cleanup and the refresh must concede."""
        workload = MicroWorkload(num_items=1, refill=8, num_sites=2)
        cluster = workload.build_concurrent(
            strategy="demand",
            validate=True,
            adaptive=AdaptiveSettings(watermark=0.9, min_headroom=1),
        )
        window = [("Buy@s0", {"item": 0})] + [("Buy@s1", {"item": 0})] * 4
        timestamps = [5, 0, 0, 0, 0]
        return workload, cluster, window, timestamps

    def test_losing_rebalance_concedes_and_retries(self):
        _workload, cluster, window, timestamps = self._contended_window()
        result = cluster.submit_window(window, timestamps=timestamps)
        lost = [
            g
            for wave in result.waves
            for g in wave
            if g.rebalance_losers and not g.rebalance
        ]
        assert lost, "expected a refresh to lose an election to a violator"
        group = lost[0]
        winner_site = result.outcomes[group.winner].site
        # Co-located desires arbitrate site-locally for free; the
        # cross-site one must concede on the wire with a VoteReply
        # naming the winning violator.
        cross = [
            idx
            for idx in group.rebalance_losers
            if result.outcomes[idx].site != winner_site
        ]
        assert cross, "expected a cross-site refresh loser"
        loser_site = result.outcomes[cross[0]].site
        replies = [
            m
            for m in cluster.transport.trace
            if isinstance(m, VoteReply)
            and m.src == loser_site
            and m.dst == winner_site
        ]
        assert replies and replies[0].winner_site == winner_site
        # The desire was re-examined after the winner's install: either
        # a later wave ran the refresh, or the winner's demand-weighted
        # install already cleared the breach.  Both outcomes leave no
        # carried desire behind (the window quiesced).
        later = [
            g for wave in result.waves for g in wave if g.rebalance
        ]
        assert cluster.stats.rebalances == len(later)

    def test_window_with_refreshes_stays_serially_equivalent(self):
        workload, cluster, window, timestamps = self._contended_window()
        result = cluster.submit_window(window, timestamps=timestamps)
        state = dict(workload.initial_db)
        logs = {}
        for idx in result.commit_order:
            name, params = window[idx]
            out = evaluate(
                workload.reference_transaction(name), state, params=params
            )
            state = out.db
            logs[idx] = out.log
        for idx, outcome in enumerate(result.outcomes):
            assert outcome.log == logs[idx], f"log diverged for request {idx}"
        final = cluster.global_state()
        for key in set(state) | set(final):
            assert state.get(key, 0) == final.get(key, 0), key

    def test_windowed_refresh_determinism(self):
        runs = []
        for _ in range(2):
            _workload, cluster, window, timestamps = self._contended_window()
            trace = []
            for _ in range(6):
                result = cluster.submit_window(window, timestamps=timestamps)
                trace.append(
                    (
                        tuple(result.commit_order),
                        tuple(
                            (g.winner, g.rebalance, g.rebalance_losers)
                            for wave in result.waves
                            for g in wave
                        ),
                        cluster.stats.rebalances,
                    )
                )
            runs.append(trace)
        assert runs[0] == runs[1]
