"""Tests for the Appendix B transform (repro.protocol.remote_writes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.residual import residual_reads
from repro.analysis.symbolic import build_symbolic_table
from repro.lang.interp import evaluate
from repro.lang.parser import parse_transaction
from repro.protocol.remote_writes import (
    ReplicationSpec,
    delta_base,
    initial_replicated_db,
    replicate_workload,
    transform_for_site,
)

FIG23_SRC = """
transaction F() {
  xh := read(x);
  if 0 < xh then { write(x = xh - 1) } else { write(x = 10) }
}
"""


def _spec(sites=(1, 2)):
    return ReplicationSpec(bases={"x": tuple(sites)}, home={"x": 1})


def _effective_x(db, sites=(1, 2)):
    return db.get("x", 0) + sum(db.get(delta_base("x", s), 0) for s in sites)


class TestFigure23:
    def test_writes_become_local(self):
        tx = transform_for_site(parse_transaction(FIG23_SRC), 1, _spec())
        rendered = tx.body.pretty()
        assert "write(x " not in rendered
        assert "write(x__d1" in rendered

    def test_reads_become_sums(self):
        tx = transform_for_site(parse_transaction(FIG23_SRC), 1, _spec())
        rendered = tx.body.pretty()
        assert "read(x)" in rendered and "read(x__d1)" in rendered

    def test_transform_preserves_effective_value(self):
        """The invariant value(x) = x + sum dx_i after any run."""
        original = parse_transaction(FIG23_SRC)
        for initial in (0, 1, 5):
            ref = evaluate(original, {"x": initial})
            for site in (1, 2):
                variant = transform_for_site(original, site, _spec())
                out = evaluate(variant, {"x": initial})
                assert _effective_x(out.db) == ref.db["x"]

    def test_decrement_residual_is_purely_local(self):
        """Figure 23c: after linear simplification, the decrement row
        reads only the site's own delta."""
        variant = transform_for_site(parse_transaction(FIG23_SRC), 1, _spec())
        table = build_symbolic_table(variant)
        decrement_rows = [
            row for row in table.rows if "0 <" in row.guard.pretty() or "> 0" in row.guard.pretty()
        ]
        assert decrement_rows
        for row in decrement_rows:
            assert residual_reads(row.residual) == {"x__d1"}

    def test_reset_residual_needs_remote_reads(self):
        """The write of an absolute value (10) cannot cancel: it reads
        the base and the other site's delta (this is what forces the
        synchronization on the refill path)."""
        variant = transform_for_site(parse_transaction(FIG23_SRC), 1, _spec())
        table = build_symbolic_table(variant)
        reset_rows = [row for row in table.rows if "10" in row.residual.pretty()]
        assert reset_rows
        for row in reset_rows:
            reads = residual_reads(row.residual)
            assert "x" in reads and "x__d2" in reads


class TestSpecMechanics:
    def test_locate_deltas(self):
        spec = _spec()
        assert spec.locate("x__d1") == 1
        assert spec.locate("x__d2") == 2
        assert spec.locate("x") == 1  # home
        assert spec.locate("unrelated", fallback=7) == 7

    def test_locate_array_deltas(self):
        spec = ReplicationSpec(bases={"qty": (0, 1)}, home={"qty": 0})
        assert spec.locate("qty__d1[44]") == 1
        assert spec.locate("qty[44]") == 0

    def test_initial_db_materializes_deltas(self):
        spec = ReplicationSpec(bases={"qty": (0, 1)}, home={"qty": 0})
        db = initial_replicated_db({"qty[3]": 7, "other": 1}, spec, (0, 1))
        assert db["qty[3]"] == 7
        assert db["qty__d0[3]"] == 0 and db["qty__d1[3]"] == 0
        assert "other__d0" not in db

    def test_writer_without_delta_rejected(self):
        spec = ReplicationSpec(bases={"x": (1, 2)}, home={"x": 1})
        with pytest.raises(ValueError):
            transform_for_site(parse_transaction(FIG23_SRC), 3, spec)

    def test_replicate_workload_names(self):
        variants = replicate_workload(
            [parse_transaction(FIG23_SRC)], (1, 2), _spec()
        )
        assert set(variants) == {"F@s1", "F@s2"}


class TestArrayTransform:
    SRC = """
    transaction Buy(i) {
      q := read(qty(@i));
      if q > 1 then { write(qty(@i) = q - 1) } else { write(qty(@i) = 9) }
    }
    """

    def test_parameterized_deltas(self):
        spec = ReplicationSpec(bases={"qty": (0, 1)}, home={"qty": 0})
        tx = transform_for_site(parse_transaction(self.SRC), 0, spec)
        rendered = tx.body.pretty()
        assert "qty__d0(@i)" in rendered

    @settings(max_examples=40)
    @given(q=st.integers(-3, 12), item=st.integers(0, 3), site=st.integers(0, 1))
    def test_array_semantics_preserved(self, q, item, site):
        spec = ReplicationSpec(bases={"qty": (0, 1)}, home={"qty": 0})
        original = parse_transaction(self.SRC)
        variant = transform_for_site(original, site, spec)
        db = {f"qty[{item}]": q}
        ref = evaluate(original, db, params={"i": item})
        out = evaluate(variant, db, params={"i": item})
        effective = out.db.get(f"qty[{item}]", 0) + sum(
            out.db.get(f"qty__d{s}[{item}]", 0) for s in (0, 1)
        )
        assert effective == ref.db[f"qty[{item}]"]


@settings(max_examples=50, deadline=None)
@given(
    initial=st.integers(-5, 15),
    moves=st.lists(st.tuples(st.integers(1, 2)), min_size=1, max_size=8),
)
def test_interleaved_transform_matches_serial(initial, moves):
    """PROPERTY: executing per-site transformed variants in any order
    on a shared store computes the same effective value as running the
    original transaction the same number of times serially.

    (This is the Abelian-group argument of Appendix B for integers:
    delta composition commutes as long as every variant reads the
    synchronized state, which a shared store models.)
    """
    original = parse_transaction(FIG23_SRC)
    spec = _spec()
    variants = {s: transform_for_site(original, s, spec) for s in (1, 2)}

    serial_db = {"x": initial}
    shared_db = {"x": initial}
    for (site,) in moves:
        serial_db = evaluate(original, serial_db).db
        shared_db = evaluate(variants[site], shared_db).db
    assert _effective_x(shared_db) == serial_db["x"]
