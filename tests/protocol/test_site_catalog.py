"""Tests for site servers and the stored-procedure catalog (Section 5.1)."""

import pytest

from repro.analysis.symbolic import build_symbolic_table
from repro.lang.parser import parse_transaction
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.terms import ObjT
from repro.protocol.catalog import CatalogError, StoredProcedureCatalog
from repro.protocol.messages import MessageStats
from repro.protocol.site import SiteServer
from repro.treaty.table import LocalTreaty

INCR_SRC = """
transaction Incr() {
  v := read(x);
  if v < 10 then { write(x = v + 1) } else { write(x = 0) }
}
"""


def _catalog():
    catalog = StoredProcedureCatalog()
    catalog.register(build_symbolic_table(parse_transaction(INCR_SRC)))
    return catalog


class TestCatalog:
    def test_one_procedure_per_row(self):
        catalog = _catalog()
        assert len(catalog.procedures["Incr"]) == 2

    def test_dispatch_selects_matching_row(self):
        catalog = _catalog()
        proc = catalog.dispatch("Incr", lambda n: {"x": 3}.get(n, 0))
        assert "v + 1" in proc.row.residual.pretty() or "+ 1" in proc.row.residual.pretty()
        proc = catalog.dispatch("Incr", lambda n: {"x": 12}.get(n, 0))
        assert "= 0" in proc.row.residual.pretty()

    def test_duplicate_registration_rejected(self):
        catalog = _catalog()
        with pytest.raises(CatalogError):
            catalog.register(build_symbolic_table(parse_transaction(INCR_SRC)))

    def test_unknown_transaction(self):
        catalog = _catalog()
        with pytest.raises(CatalogError):
            catalog.dispatch("Nope", lambda n: 0)

    def test_full_transaction_retrievable(self):
        catalog = _catalog()
        assert catalog.full_transaction("Incr").name == "Incr"


def _local_treaty(site, upper):
    """x <= upper as a local treaty at `site`."""
    return LocalTreaty(
        site=site,
        constraints=[
            LinearConstraint.make(LinearExpr.variable(ObjT("x")), "<=", upper)
        ],
    )


class TestSiteServer:
    def _server(self, treaty_upper=None):
        server = SiteServer(site_id=0, locate=lambda name: 0)
        server.catalog.register(build_symbolic_table(parse_transaction(INCR_SRC)))
        if treaty_upper is not None:
            server.install_treaty(_local_treaty(0, treaty_upper))
        return server

    def test_commit_within_treaty(self):
        server = self._server(treaty_upper=5)
        result = server.execute("Incr")
        assert result.committed and not result.violated
        assert server.engine.peek("x") == 1

    def test_violation_aborts_and_reports(self):
        server = self._server(treaty_upper=2)
        server.engine.poke("x", 2)
        result = server.execute("Incr")  # would write x = 3 > 2
        assert result.violated and not result.committed
        assert server.engine.peek("x") == 2  # rolled back

    def test_no_treaty_always_commits(self):
        server = self._server()
        for _ in range(11):
            server.execute("Incr")
        # 0 -> 10 in ten increments, then the reset branch fires.
        assert server.engine.peek("x") == 0

    def test_foreign_write_assertion(self):
        server = SiteServer(site_id=0, locate=lambda name: 1)  # nothing local
        server.catalog.register(build_symbolic_table(parse_transaction(INCR_SRC)))
        with pytest.raises(AssertionError):
            server.execute("Incr")

    def test_dirty_owned_values_and_sync(self):
        server = self._server(treaty_upper=100)
        server.execute("Incr")
        dirty = server.dirty_owned_values()
        assert dirty == {"x": 1}
        server.apply_sync({"x": 42, "remote": 7})
        assert server.engine.peek("x") == 42
        assert server.engine.peek("remote") == 7
        assert server.dirty_owned_values() == {}

    def test_cleanup_run_returns_log_and_writes(self):
        server = self._server()
        log, written = server.run_cleanup_transaction("Incr")
        assert written == {"x"}
        assert log == ()


class TestMessageStats:
    """MessageStats is a pure derived view over a message trace."""

    def test_sync_round_counts(self):
        from repro.protocol.messages import SyncBroadcast

        # All-to-all exchange among 4 participants: 4*3 broadcasts.
        trace = [
            SyncBroadcast(src=a, dst=b)
            for a in range(4)
            for b in range(4)
            if a != b
        ]
        stats = MessageStats.from_trace(trace, negotiations=1)
        assert stats.sync_broadcasts == 12
        assert stats.negotiations == 1
        assert stats.total() == 12

    def test_mixed_trace(self):
        from repro.protocol.messages import (
            CleanupRun,
            Decision,
            Prepare,
            TreatyInstall,
            Vote,
        )

        trace = [
            Vote(src=0, dst=1),
            CleanupRun(src=0, dst=1, tx_name="T"),
            TreatyInstall(src=0, dst=1, round_number=2),
            Prepare(src=0, dst=1),
            Prepare(src=0, dst=2),
            Decision(src=0, dst=1),
            Decision(src=0, dst=2),
        ]
        stats = MessageStats.from_trace(trace)
        assert stats.vote_messages == 1
        assert stats.cleanup_messages == 1
        assert stats.treaty_updates == 1
        assert stats.prepare_messages == 2
        assert stats.decision_messages == 2
        assert stats.total() == 7

    def test_unknown_message_rejected(self):
        from repro.protocol.messages import Message

        with pytest.raises(TypeError):
            MessageStats.from_trace([Message(src=0, dst=1)])
