"""The typed transport layer and participant-scoped negotiation.

Covers the acceptance criteria of the message-passing runtime:

- ``MessageStats`` is a derived view over the transport trace;
- cleanup rounds are scoped to the participant closure of the
  violation, with sync message counts proportional to the participant
  set rather than the cluster size;
- the simulator prices a negotiation from the RTT edges actually
  used (a UE<->UW violation on the Table 1 matrix costs ~128 ms, not
  the 744 ms cluster diameter);
- protocol execution stays observationally equivalent to serial
  execution under partial-overlap (geo-partitioned) deployments.
"""

import random

import pytest

from repro.lang.interp import evaluate
from repro.protocol.messages import (
    MessageStats,
    Prepare,
    SyncBroadcast,
    TreatyInstall,
    Vote,
)
from repro.protocol.transport import Transport, TransportError
from repro.sim.network import rtt_matrix_for
from repro.sim.runner import SimConfig, SimRequest, simulate
from repro.workloads.geo import GeoMicroWorkload
from repro.workloads.micro import MicroWorkload


class _Recorder:
    def __init__(self):
        self.received = []

    def handle(self, msg):
        self.received.append(msg)
        return ("ack", msg.dst)


class TestTransport:
    def test_send_delivers_and_traces(self):
        transport = Transport()
        a, b = _Recorder(), _Recorder()
        transport.register(0, a)
        transport.register(1, b)
        reply = transport.send(Vote(src=0, dst=1, tx_name="T"))
        assert reply == ("ack", 1)
        assert b.received and isinstance(b.received[0], Vote)
        assert transport.trace == b.received

    def test_unknown_destination_rejected(self):
        transport = Transport()
        transport.register(0, _Recorder())
        with pytest.raises(TransportError):
            transport.send(Vote(src=0, dst=7))

    def test_duplicate_registration_rejected(self):
        transport = Transport()
        transport.register(0, _Recorder())
        with pytest.raises(TransportError):
            transport.register(0, _Recorder())

    def test_negotiation_groups_messages(self):
        transport = Transport()
        for sid in range(3):
            transport.register(sid, _Recorder())
        with transport.negotiation("cleanup", origin=0) as neg:
            transport.send(Vote(src=0, dst=2))
            transport.send(SyncBroadcast(src=2, dst=0))
        transport.send(Vote(src=0, dst=1))  # outside the round
        assert neg.participants == (0, 2)
        assert neg.edges == ((0, 2),)
        assert neg.sync_message_count == 1
        assert len(transport.trace) == 3

    def test_negotiations_do_not_nest(self):
        transport = Transport()
        with pytest.raises(TransportError):
            with transport.negotiation("cleanup", origin=0):
                with transport.negotiation("cleanup", origin=0):
                    pass

    def test_message_stats_derived_from_trace(self):
        transport = Transport()
        for sid in range(3):
            transport.register(sid, _Recorder())
        with transport.negotiation("cleanup", origin=0):
            transport.send(Vote(src=0, dst=1))
            transport.send(SyncBroadcast(src=0, dst=1))
            transport.send(SyncBroadcast(src=1, dst=0))
        transport.send(Prepare(src=0, dst=2))
        stats = transport.message_stats()
        assert stats.sync_broadcasts == 2
        assert stats.vote_messages == 1
        assert stats.prepare_messages == 1
        assert stats.negotiations == 1
        assert stats.total() == 4


GROUPS = ((0, 1), (2, 3), (0, 4))


def _geo_workload(**kw):
    defaults = dict(
        groups=GROUPS, num_sites=5, items_per_group=4, refill=30,
        initial_qty="random", init_seed=3,
    )
    defaults.update(kw)
    return GeoMicroWorkload(**defaults)


def _drive_until_sync(cluster, workload, rng, group=None, limit=4000):
    """Submit requests until one triggers a negotiation (optionally of
    a specific replication group); returns the ClusterResult."""
    for _ in range(limit):
        req = workload.next_request(rng)
        if group is not None and req.group != group:
            continue
        out = cluster.submit(req.tx_name, req.params)
        if out.synced:
            return out
    raise AssertionError("no negotiation occurred")


class TestParticipantScoping:
    def test_cleanup_round_scoped_to_group(self):
        workload = _geo_workload()
        cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
        rng = random.Random(0)
        out = _drive_until_sync(cluster, workload, rng, group=1)
        # Group 1 lives on sites (2, 3); nothing else may be involved.
        assert set(out.participants) == {2, 3}
        neg = cluster.transport.last_negotiation()
        assert neg.kind == "cleanup"
        assert set(neg.participants) == {2, 3}
        # Sync messages scale with the participant set, not the
        # 5-site cluster: p*(p-1) = 2, not 20.
        assert neg.sync_message_count == 2
        assert neg.edges == ((2, 3),)

    def test_sync_messages_proportional_to_participants(self):
        workload = _geo_workload()
        cluster = workload.build_homeostasis(strategy="equal-split")
        rng = random.Random(1)
        for _ in range(500):
            req = workload.next_request(rng)
            cluster.submit(req.tx_name, req.params)
        k = len(cluster.site_ids)
        negotiated = [
            n for n in cluster.transport.negotiations if n.kind == "cleanup"
        ]
        assert negotiated
        for neg in negotiated:
            p = len(neg.participants)
            assert p < k  # no group spans the full cluster
            assert neg.sync_message_count == p * (p - 1)

    def test_non_participants_untouched(self):
        workload = _geo_workload()
        cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
        rng = random.Random(2)
        before = {
            sid: cluster.sites[sid].engine.store.snapshot()
            for sid in cluster.site_ids
        }
        out = _drive_until_sync(cluster, workload, rng, group=1)
        assert set(out.participants) == {2, 3}
        # Sites 0, 1, 4 heard nothing: snapshots identical up to their
        # own local commits (none of group 1's objects changed there).
        for sid in (0, 1, 4):
            after = cluster.sites[sid].engine.store.snapshot()
            for name in before[sid]:
                if name.startswith("qty1"):
                    assert after.get(name) == before[sid][name]

    def test_stats_messages_match_trace(self):
        workload = _geo_workload()
        cluster = workload.build_homeostasis(strategy="equal-split")
        rng = random.Random(3)
        for _ in range(300):
            req = workload.next_request(rng)
            cluster.submit(req.tx_name, req.params)
        stats = cluster.stats.messages
        trace = cluster.transport.trace
        assert stats.sync_broadcasts == sum(
            isinstance(m, SyncBroadcast) for m in trace
        )
        assert stats.vote_messages == sum(isinstance(m, Vote) for m in trace)
        assert stats.total() == len(trace)
        assert isinstance(stats, MessageStats)

    def test_geo_equivalence_with_scoped_rounds(self):
        """Theorem 3.8 holds under partial-overlap deployments: scoped
        rounds leave non-participants stale but never observably so."""
        workload = _geo_workload(items_per_group=3, refill=20, init_seed=7)
        cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
        rng = random.Random(7)
        schedule = [workload.next_request(rng) for _ in range(350)]
        logs = [cluster.submit(r.tx_name, r.params).log for r in schedule]
        state = dict(workload.initial_db)
        serial_logs = []
        for r in schedule:
            out = evaluate(
                workload.reference_transaction(r.tx_name), state, params=r.params
            )
            state = out.db
            serial_logs.append(out.log)
        assert logs == serial_logs
        final = cluster.global_state()
        for key in set(state) | set(final):
            assert state.get(key, 0) == final.get(key, 0), key
        # The forced global barrier converges every site afterwards.
        cluster.force_synchronize()

    def test_full_replication_still_involves_everyone(self):
        """The micro workload replicates across all sites, so scoping
        degenerates to the seed behaviour: K*(K-1) sync messages."""
        workload = MicroWorkload(num_items=4, refill=8, num_sites=3)
        cluster = workload.build_homeostasis(strategy="equal-split")
        rng = random.Random(4)
        for _ in range(120):
            req = workload.next_request(rng)
            out = cluster.submit(req.tx_name, req.params)
            if out.synced:
                assert out.participants == (0, 1, 2)
        stats = cluster.stats
        assert stats.messages.sync_broadcasts == stats.negotiations * 6

    def test_nondeterministic_solver_ships_treaties(self):
        import dataclasses

        from repro.protocol.config import build_cluster

        workload = MicroWorkload(num_items=3, refill=6, num_sites=2)
        gen_cluster = workload.build_homeostasis(strategy="equal-split")
        # Rebuild with the nondeterministic-solver accounting enabled.
        spec = dataclasses.replace(
            workload.cluster_spec(strategy="equal-split"),
            deterministic_solver=False,
        )
        cluster = build_cluster(spec)
        rng = random.Random(5)
        for _ in range(60):
            req = workload.next_request(rng)
            cluster.submit(req.tx_name, req.params)
        stats = cluster.stats
        assert stats.negotiations > 0
        # One TreatyInstall per non-coordinator participant per round
        # (including the bootstrap install of round 1).
        assert stats.messages.treaty_updates == stats.rounds
        trace = cluster.transport.trace
        assert any(isinstance(m, TreatyInstall) for m in trace)
        assert gen_cluster.stats.messages.treaty_updates == 0


class TestEdgePricing:
    """A violation involving only sites A and B is priced from the
    A<->B edge of the Table 1 matrix."""

    def test_ue_uw_violation_costs_128_not_744(self):
        workload = GeoMicroWorkload(
            groups=((0, 1),), num_sites=5, items_per_group=10, refill=30,
            initial_qty="random", init_seed=1,
        )
        cluster = workload.build_homeostasis(strategy="equal-split")

        def request_fn(rng, replica):
            req = workload.next_request(rng, site=replica)
            return SimRequest(req.tx_name, req.params, req.items, family="Buy")

        config = SimConfig(
            mode="homeo",
            num_replicas=5,
            clients_per_replica=4,
            rtt_matrix=rtt_matrix_for(5),  # asymmetric Table 1 matrix
            solver_ms=0.0,
            max_txns=800,
            seed=0,
        )
        res = simulate(config, cluster, request_fn)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced, "expected negotiations"
        for r in synced:
            assert r.participants == (0, 1)
            assert r.comm_ms == pytest.approx(2 * 64.0)  # UE<->UW edge
            assert r.comm_ms != pytest.approx(2 * 372.0)  # not SG<->BR
        assert res.participant_histogram() == {2: len(
            [r for r in synced if r.start_ms >= res.measured_from_ms]
        )}
