"""AsyncTransport: real deliveries, real timeouts, same contract.

Exercises the wall-clock transport against a mini host (a hand-rolled
loop thread + recorder endpoints) without the full protocol stack:

- replies cross the loop intact (typed values restored);
- the trace and scope attribution match the synchronous fabric;
- drops and severed edges cost the sender its timeout and raise
  :class:`UnreachableError`; known crash-stops refuse immediately;
- crash-after-handling marks the site down with the handled state
  applied;
- wire accounting counts every frame that crossed the loop.
"""

import asyncio
import threading
import time

import pytest

from repro.protocol.faults import FaultPlan, Partition
from repro.protocol.messages import CleanupRun, SyncBroadcast, Vote
from repro.protocol.transport import TransportError, UnreachableError
from repro.runtime.transport import AsyncTransport


class _Recorder:
    def __init__(self, reply=True):
        self.received = []
        self.reply = reply

    def handle(self, msg):
        self.received.append(msg)
        return self.reply


class _Failing:
    def handle(self, msg):
        raise RuntimeError("handler exploded")


@pytest.fixture()
def loop_thread():
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)

    def _run():
        asyncio.set_event_loop(loop)
        loop.run_forever()

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    yield loop
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=5)
    loop.close()


def _make(loop, *, faults=None, timeout_s=0.05, endpoints=2, reply=True):
    transport = AsyncTransport(timeout_s=timeout_s, faults=faults)
    transport.bind_loop(loop)
    recorders = [_Recorder(reply=reply) for _ in range(endpoints)]
    for sid, rec in enumerate(recorders):
        transport.register(sid, rec)
    return transport, recorders


class TestDelivery:
    def test_send_delivers_and_replies(self, loop_thread):
        transport, recs = _make(loop_thread)
        reply = transport.send(Vote(src=0, dst=1, tx_name="T"))
        assert reply is True
        assert len(recs[1].received) == 1
        assert recs[1].received[0] == Vote(src=0, dst=1, tx_name="T")
        transport.close()

    def test_typed_reply_values_cross_the_loop(self, loop_thread):
        transport = AsyncTransport(timeout_s=1.0)
        transport.bind_loop(loop_thread)

        class _Site:
            def handle(self, msg):
                return ((1, 0, 2), {"stock[4]"})

        transport.register(0, _Recorder())
        transport.register(1, _Site())
        log, written = transport.send(CleanupRun(src=0, dst=1, tx_name="T"))
        assert log == (1, 0, 2) and written == {"stock[4]"}
        transport.close()

    def test_trace_matches_sync_fabric(self, loop_thread):
        transport, _ = _make(loop_thread, endpoints=3)
        with transport.negotiation("cleanup", origin=0) as neg:
            transport.send(Vote(src=0, dst=2))
            transport.send(SyncBroadcast(src=2, dst=0))
        transport.send(Vote(src=0, dst=1))
        assert neg.participants == (0, 2)
        assert neg.sync_message_count == 1
        assert len(transport.trace) == 3
        transport.close()

    def test_unregistered_destination_rejected(self, loop_thread):
        transport, _ = _make(loop_thread)
        with pytest.raises(TransportError):
            transport.send(Vote(src=0, dst=9))
        transport.close()

    def test_handler_exception_propagates_after_tracing(self, loop_thread):
        transport = AsyncTransport(timeout_s=1.0)
        transport.bind_loop(loop_thread)
        transport.register(0, _Recorder())
        transport.register(1, _Failing())
        with pytest.raises(RuntimeError, match="handler exploded"):
            transport.send(Vote(src=0, dst=1))
        assert len(transport.trace) == 1  # delivered: state may have changed
        transport.close()

    def test_wire_accounting(self, loop_thread):
        transport, _ = _make(loop_thread)
        transport.send(Vote(src=0, dst=1))
        transport.send(SyncBroadcast(src=1, dst=0, updates=(("x", 1),)))
        assert transport.frames_sent == 2
        assert transport.bytes_sent > 0
        transport.close()


class TestFaults:
    def test_known_down_refuses_immediately(self, loop_thread):
        transport, _ = _make(loop_thread, timeout_s=5.0)
        transport.down.add(1)
        start = time.monotonic()
        with pytest.raises(UnreachableError):
            transport.send(Vote(src=0, dst=1))
        assert time.monotonic() - start < 1.0  # no timer paid
        assert len(transport.undelivered) == 1
        transport.close()

    def test_drop_costs_the_timeout(self, loop_thread):
        faults = FaultPlan(seed=0, drop_rate=1.0)
        transport, recs = _make(loop_thread, faults=faults, timeout_s=0.05)
        start = time.monotonic()
        with pytest.raises(UnreachableError):
            transport.send(Vote(src=0, dst=1))
        assert time.monotonic() - start >= 0.05  # timer actually paid
        assert recs[1].received == []  # frame never delivered
        assert transport.frames_sent == 0
        transport.close()

    def test_severed_edge_unreachable(self, loop_thread):
        faults = FaultPlan(
            seed=0,
            partitions=(Partition.separating({0}, {1}),),
        )
        transport, recs = _make(loop_thread, faults=faults, timeout_s=0.02)
        with pytest.raises(UnreachableError):
            transport.send(Vote(src=0, dst=1))
        assert recs[1].received == []
        transport.close()

    def test_crash_after_handling(self, loop_thread):
        faults = FaultPlan(seed=0, crash_after={1: 1})
        transport, recs = _make(loop_thread, faults=faults, timeout_s=1.0)
        with pytest.raises(UnreachableError):
            transport.send(Vote(src=0, dst=1))
        # the crashing message WAS handled (state changed), then the
        # site halted before replying
        assert len(recs[1].received) == 1
        assert 1 in transport.down
        transport.close()

    def test_close_is_idempotent(self, loop_thread):
        transport, _ = _make(loop_thread)
        transport.send(Vote(src=0, dst=1))
        transport.close()
        transport.close()
