"""Wire codec: framing, canonical round-trips, hostile bytes.

The acceptance bar for the asyncio runtime's wire format:

- every message type round-trips *byte-identically* (encode ->
  decode -> encode is the same frame), including a ``TreatyInstall``
  carrying a real :class:`LocalTreaty`;
- unknown wire versions, truncated frames, trailing garbage, and
  unknown type tags raise the typed codec errors instead of
  misparsing;
- arbitrary junk bytes (Hypothesis) never raise anything *but*
  :class:`CodecError` -- a hostile peer cannot crash a reader.
"""

import json
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.terms import ObjT
from repro.protocol.messages import (
    CleanupRun,
    Complete,
    Decision,
    Phase2a,
    Phase2b,
    Prepare,
    RebalanceRequest,
    Rejoin,
    SyncBroadcast,
    TreatyInstall,
    Vote,
    VoteReply,
)
from repro.runtime.codec import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    CodecError,
    TruncatedFrame,
    UnknownMessageType,
    UnknownWireVersion,
    decode_message,
    decode_payload,
    encode_message,
    encode_payload,
    value_from_wire,
    value_to_wire,
)
from repro.treaty.table import LocalTreaty


def _clause(names_coeffs, op, bound):
    expr = LinearExpr.make({ObjT(n): c for n, c in names_coeffs})
    return LinearConstraint.make(expr, op, bound)


def _sample_treaty():
    return LocalTreaty(
        site=1,
        constraints=[
            _clause([("qty_delta[0]@s1", 1)], "<=", 12),
            _clause([("qty_delta[1]@s1", 2), ("qty_delta[2]@s1", -1)], "<=", 5),
            _clause([("qty_base[0]", 1)], "=", 40),
        ],
    )


SAMPLE_MESSAGES = [
    SyncBroadcast(src=0, dst=1, updates=(("stock[3]", 17), ("stock[9]", -2))),
    SyncBroadcast(src=2, dst=0),
    TreatyInstall(src=1, dst=3, round_number=7, treaty=_sample_treaty()),
    TreatyInstall(src=1, dst=3, round_number=0, treaty=None),
    Vote(src=0, dst=2, tx_name="Buy@s0", timestamp=14, txn_seq=3),
    VoteReply(src=2, dst=0, winner_site=0, winner_txn=3),
    RebalanceRequest(src=1, dst=2, objects=("stock[1]", "stock[5]")),
    CleanupRun(src=0, dst=1, tx_name="Buy@s0", params=(("item", 4),)),
    Rejoin(src=3, dst=1, wal_round=9),
    Prepare(src=0, dst=1, updates=(("x", 10), ("y", -1))),
    Decision(src=0, dst=1, commit=False),
    Phase2a(
        src=1,
        dst=0,
        round_number=12,
        ballot=0,
        verdicts=((0, True), (1, True), (2, False)),
    ),
    Phase2a(src=2, dst=0, round_number=12, ballot=1, verdicts=()),
    Phase2b(src=0, dst=1, round_number=12, ballot=1, acked=True),
    Complete(src=2, dst=0, round_number=12, committed=True, tx_name="Buy@s1"),
]


class TestMessageRoundTrip:
    @pytest.mark.parametrize(
        "msg", SAMPLE_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_byte_identical_round_trip(self, msg):
        frame = encode_message(msg)
        decoded = decode_message(frame)
        assert type(decoded) is type(msg)
        assert decoded.src == msg.src and decoded.dst == msg.dst
        # re-encoding the decoded message reproduces the exact frame
        assert encode_message(decoded) == frame

    def test_field_equality_round_trip(self):
        for msg in SAMPLE_MESSAGES:
            decoded = decode_message(encode_message(msg))
            if isinstance(msg, TreatyInstall):
                want = (
                    None
                    if msg.treaty is None
                    else [c.pretty() for c in msg.treaty.constraints]
                )
                got = (
                    None
                    if decoded.treaty is None
                    else [c.pretty() for c in decoded.treaty.constraints]
                )
                assert got == want
                assert decoded.round_number == msg.round_number
            else:
                assert decoded == msg

    def test_treaty_tuple_types_restored(self):
        msg = decode_message(encode_message(SAMPLE_MESSAGES[0]))
        assert isinstance(msg.updates, tuple)
        assert all(isinstance(pair, tuple) for pair in msg.updates)

    def test_unregistered_message_type_refused(self):
        class Rogue(SyncBroadcast):
            pass

        with pytest.raises(UnknownMessageType):
            encode_message(Rogue(src=0, dst=1))


class TestFraming:
    def test_unknown_version_refused(self):
        frame = bytearray(encode_message(SAMPLE_MESSAGES[0]))
        frame[4] = WIRE_VERSION + 1  # version byte sits after the prefix
        with pytest.raises(UnknownWireVersion):
            decode_payload(bytes(frame))

    def test_truncated_frame_raises(self):
        frame = encode_message(SAMPLE_MESSAGES[0])
        for cut in (0, 2, 5, len(frame) - 1):
            with pytest.raises(TruncatedFrame):
                decode_payload(frame[:cut])

    def test_trailing_bytes_raise(self):
        frame = encode_message(SAMPLE_MESSAGES[0])
        with pytest.raises(CodecError):
            decode_payload(frame + b"x")

    def test_oversized_length_prefix_refused(self):
        frame = struct.pack(">I", MAX_FRAME_BYTES + 1) + b"\x01{}"
        with pytest.raises(CodecError):
            decode_payload(frame)

    def test_unknown_type_tag_refused(self):
        frame = encode_payload({"t": "NoSuchMessage", "src": 0, "dst": 1})
        with pytest.raises(UnknownMessageType):
            decode_message(frame)

    def test_malformed_fields_are_codec_errors(self):
        frame = encode_payload({"t": "Vote", "src": 0})  # dst missing
        with pytest.raises(CodecError):
            decode_message(frame)

    def test_non_object_payload_refused(self):
        body = bytes([WIRE_VERSION]) + json.dumps([1, 2]).encode()
        frame = struct.pack(">I", len(body)) + body
        with pytest.raises(CodecError):
            decode_payload(frame)

    @given(st.binary(max_size=256))
    def test_junk_bytes_never_crash(self, junk):
        try:
            decode_payload(junk)
        except CodecError:
            pass  # the only acceptable failure mode

    @given(st.binary(min_size=1, max_size=64))
    def test_framed_junk_never_crashes(self, junk):
        frame = struct.pack(">I", len(junk)) + junk
        try:
            decode_message(frame)
        except CodecError:
            pass


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -7,
            "ok",
            (),
            (1, 2, 3),
            ((4,), "n", None),
            frozenset({"a", "b"}),
            {"x"},
            ((1, 2), frozenset({"z"})),
        ],
    )
    def test_round_trip(self, value):
        assert value_from_wire(value_to_wire(value)) == value

    def test_types_restored_exactly(self):
        log_written = ((4, 0, 7), {"stock[3]", "stock[5]"})
        back = value_from_wire(value_to_wire(log_written))
        assert isinstance(back, tuple)
        assert isinstance(back[0], tuple)
        assert isinstance(back[1], set) and not isinstance(back[1], frozenset)

    def test_unencodable_value_refused(self):
        with pytest.raises(CodecError):
            value_to_wire(object())

    def test_malformed_tag_refused(self):
        with pytest.raises(CodecError):
            value_from_wire({"__": "nope", "v": []})
