"""The differential oracle gate: async runtime == deterministic kernel.

The PR's acceptance criterion: on >= 3 seeds for both the micro and
geo workloads, the asyncio cluster and the in-process kernel fed
identical schedules produce identical per-transaction outcomes and
logs, identical treaty installs, identical final stores, and identical
protocol counters -- with the schedules dense enough that treaties
actually violate (a schedule with zero negotiations gates nothing).

One seed per workload additionally runs in validate mode, so the
kernel's own oracles (H1/H2, sync agreement, escrow cross-checks)
execute *inside* the async runtime as well.

Hypothesis drives an extra randomized-schedule case on the micro
cluster: any generated buy schedule must keep the kernels in
agreement.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.differential import (
    geo_case,
    micro_case,
    run_differential,
)

SEEDS = (0, 1, 2)


class TestDifferentialGate:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_micro_agrees(self, seed):
        factory, schedule = micro_case(seed, txns=30)
        report = run_differential(factory, schedule)
        assert report.ok, report.mismatches
        assert report.negotiations > 0, "schedule never violated"
        assert report.transactions == 30

    @pytest.mark.parametrize("seed", SEEDS)
    def test_geo_agrees(self, seed):
        factory, schedule = geo_case(seed, txns=30)
        report = run_differential(factory, schedule)
        assert report.ok, report.mismatches
        assert report.negotiations > 0, "schedule never violated"

    def test_micro_agrees_in_validate_mode(self):
        factory, schedule = micro_case(0, txns=20, validate=True)
        report = run_differential(factory, schedule)
        assert report.ok, report.mismatches

    def test_geo_agrees_in_validate_mode(self):
        factory, schedule = geo_case(0, txns=20, validate=True)
        report = run_differential(factory, schedule)
        assert report.ok, report.mismatches

    def test_report_summary_readable(self):
        factory, schedule = micro_case(0, txns=5)
        report = run_differential(factory, schedule)
        assert "kernels agree" in report.summary()


class TestHypothesisSchedules:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schedule=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 7)),
            min_size=5,
            max_size=25,
        )
    )
    def test_any_buy_schedule_agrees(self, schedule):
        factory, _ = micro_case(0)
        requests = [
            (f"Buy@s{site}", {"item": item}) for site, item in schedule
        ]
        report = run_differential(factory, requests)
        assert report.ok, report.mismatches
