"""AsyncClusterHost: the full protocol kernel over the event loop.

End-to-end checks that the host behaves like a cluster: commits and
negotiations run through real wire frames, crash/recover work, the
concurrent driver serves windows, and lifecycle teardown is clean.
"""

import pytest

from repro.protocol.config import build_cluster
from repro.protocol.homeostasis import Unavailable
from repro.protocol.messages import Outcome
from repro.runtime.cluster import AsyncClusterHost
from repro.workloads.micro import MicroWorkload


def _spec(**kwargs):
    workload = MicroWorkload(num_items=6, refill=6, num_sites=2)
    return workload.cluster_spec(strategy="equal-split", **kwargs)


class TestHost:
    def test_commits_and_negotiations_over_the_wire(self):
        with AsyncClusterHost(_spec()) as host:
            statuses = []
            for i in range(24):
                res = host.try_submit(f"Buy@s{i % 2}", {"item": i % 3})
                statuses.append(res.status)
            assert all(s is Outcome.COMMITTED for s in statuses)
            assert host.stats.negotiations > 0  # tight stock violated
            wire = host.wire_stats()
            assert wire["frames_sent"] > 0 and wire["bytes_sent"] > 0

    def test_build_cluster_facade(self):
        host = build_cluster(_spec(), kernel="async", timeout_s=2.0)
        try:
            assert isinstance(host, AsyncClusterHost)
            assert host.submit("Buy@s0", {"item": 0}).status is Outcome.COMMITTED
        finally:
            host.close()

    def test_crash_refuses_then_recovers(self):
        with AsyncClusterHost(_spec()) as host:
            host.crash_site(1)
            res = host.try_submit("Buy@s1", {"item": 0})
            assert res.status is Outcome.REFUSED
            with pytest.raises(Unavailable):
                host.submit("Buy@s1", {"item": 0})
            host.recover_site(1)
            assert host.try_submit("Buy@s1", {"item": 0}).status is Outcome.COMMITTED

    def test_global_state_consistent_after_sync(self):
        with AsyncClusterHost(_spec()) as host:
            for i in range(8):
                host.submit(f"Buy@s{i % 2}", {"item": i % 6})
            host.force_synchronize()
            state = host.global_state()
            assert state  # agreed-on global view exists

    def test_concurrent_driver_serves_windows(self):
        with AsyncClusterHost(_spec(), driver="concurrent") as host:
            result = host.submit_window(
                [("Buy@s0", {"item": 0}), ("Buy@s1", {"item": 1})]
            )
            assert all(
                o.status is Outcome.COMMITTED for o in result.outcomes
            )

    def test_sequential_driver_rejects_windows(self):
        with AsyncClusterHost(_spec()) as host:
            with pytest.raises(TypeError, match="concurrent"):
                host.submit_window([("Buy@s0", {"item": 0})])

    def test_rejects_wrong_transport_type(self):
        from repro.protocol.transport import Transport

        with pytest.raises(TypeError, match="AsyncTransport"):
            AsyncClusterHost(_spec(), transport=Transport())

    def test_use_after_close_raises(self):
        host = AsyncClusterHost(_spec())
        host.close()
        with pytest.raises(RuntimeError, match="closed"):
            host.submit("Buy@s0", {"item": 0})
        host.close()  # idempotent
