"""The serve layer: concurrent clients over real loopback sockets.

Boots ``repro-serve`` in-process (the serve coroutine on a host's own
loop, port 0) and drives it with blocking :class:`ServeClient`
connections from worker threads -- the deployment shape the runtime
exists for: concurrent connections, serialized kernel, every
submission crossing two socket hops plus the inter-site wire.
"""

import re
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.runtime.client import ServeClient, ServeError

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def server():
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runtime.serve",
            "--port",
            "0",
            "--workload",
            "micro",
            "--strategy",
            "equal-split",
            "--items",
            "12",
            "--refill",
            "9",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": SRC},
    )
    line = proc.stdout.readline()
    match = re.match(r"repro-serve listening on (\S+):(\d+)", line)
    assert match, f"no listening banner, got {line!r}"
    yield match.group(1), int(match.group(2))
    if proc.poll() is None:
        try:
            with ServeClient(match.group(1), int(match.group(2))) as c:
                c.shutdown()
        except OSError:
            proc.kill()
    proc.wait(timeout=10)


class TestServe:
    def test_ping(self, server):
        host, port = server
        with ServeClient(host, port) as client:
            assert client.ping()

    def test_submit_commits(self, server):
        host, port = server
        with ServeClient(host, port) as client:
            result = client.submit("Buy@s0", {"item": 3})
            assert result["status"] == "committed"
            assert result["site"] == 0
            assert isinstance(result["log"], list)

    def test_unknown_transaction_aborts(self, server):
        host, port = server
        with ServeClient(host, port) as client:
            result = client.submit("NoSuchTx@s0", {})
            assert result["status"] == "aborted"

    def test_malformed_request_is_an_error(self, server):
        host, port = server
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError):
                client.request({"t": "bogus-kind"})

    def test_concurrent_connections(self, server):
        host, port = server
        statuses, errors = [], []

        def worker(n):
            try:
                with ServeClient(host, port) as client:
                    for i in range(15):
                        r = client.submit(
                            f"Buy@s{(n + i) % 2}", {"item": (n * 5 + i) % 12}
                        )
                        statuses.append(r["status"])
            except Exception as exc:  # surfaces in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert len(statuses) == 60
        assert all(s == "committed" for s in statuses)

    def test_stats_reflect_load(self, server):
        host, port = server
        with ServeClient(host, port) as client:
            client.submit("Buy@s0", {"item": 0})
            stats = client.stats()
            assert stats["submitted"] >= 1
            assert stats["committed"] >= 1
            assert 0.0 <= stats["sync_ratio"] <= 1.0
            assert stats["wire"]["frames_sent"] >= 0
            assert isinstance(stats["global_state"], dict)
