"""Tests for simulation metrics and the network model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import LatencyStats, SimResult, TxnRecord, percentile
from repro.sim.network import (
    DATACENTERS,
    TABLE1_RTT_MS,
    max_rtt,
    negotiation_cost_ms,
    participants_rtt,
    rtt_matrix_for,
    uniform_rtt_matrix,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_monotone_in_pct(self, values):
        points = [percentile(values, p) for p in (0, 25, 50, 75, 100)]
        assert points == sorted(points)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_bounded_by_extremes(self, values):
        lo, hi = min(values), max(values)
        span = hi - lo
        for p in (10, 50, 90):
            v = percentile(values, p)
            # Linear interpolation may round off by a few ulps.
            assert lo - 1e-9 * span <= v <= hi + 1e-9 * span


class TestNetwork:
    def test_table1_symmetric(self):
        for a in DATACENTERS:
            for b in DATACENTERS:
                assert TABLE1_RTT_MS[(a, b)] == TABLE1_RTT_MS[(b, a)]

    def test_paper_values(self):
        assert TABLE1_RTT_MS[("UE", "UW")] == 64.0
        assert TABLE1_RTT_MS[("UE", "SG")] == 243.0
        assert TABLE1_RTT_MS[("IE", "SG")] == 285.0
        assert TABLE1_RTT_MS[("SG", "BR")] == 372.0

    def test_submatrix_growth(self):
        assert max_rtt(rtt_matrix_for(2)) == 64.0
        assert max_rtt(rtt_matrix_for(3)) == 170.0
        assert max_rtt(rtt_matrix_for(4)) == 285.0
        assert max_rtt(rtt_matrix_for(5)) == 372.0

    def test_uniform_matrix(self):
        m = uniform_rtt_matrix(3, 100.0)
        assert m[0][1] == 100.0 and m[1][1] == 0.5

    def test_bad_count(self):
        with pytest.raises(ValueError):
            rtt_matrix_for(6)


class TestEdgePricing:
    def test_participants_rtt_uses_subset_edges(self):
        matrix = rtt_matrix_for(5)
        assert participants_rtt(matrix, (0, 1)) == 64.0  # UE<->UW
        assert participants_rtt(matrix, (3, 4)) == 372.0  # SG<->BR
        assert participants_rtt(matrix, (0, 1, 2)) == 170.0  # UW<->IE
        assert participants_rtt(matrix, range(5)) == max_rtt(matrix)

    def test_single_participant_pays_diagonal(self):
        matrix = rtt_matrix_for(5)
        assert participants_rtt(matrix, (2,)) == 0.5

    def test_empty_participants_rejected(self):
        with pytest.raises(ValueError):
            participants_rtt(rtt_matrix_for(3), ())

    def test_negotiation_cost_two_rounds(self):
        matrix = rtt_matrix_for(5)
        assert negotiation_cost_ms(matrix, (0, 1), fallback_ms=744.0) == 128.0
        assert negotiation_cost_ms(matrix, (0, 3), fallback_ms=744.0) == 486.0

    def test_negotiation_cost_fallback(self):
        matrix = rtt_matrix_for(5)
        assert negotiation_cost_ms(matrix, (), fallback_ms=744.0) == 744.0
        assert negotiation_cost_ms(matrix, None, fallback_ms=744.0) == 744.0


def _record(start, end, kind, family="", **kw):
    return TxnRecord(start_ms=start, end_ms=end, kind=kind, replica=0,
                     family=family, **kw)


class TestSimResult:
    def _result(self):
        res = SimResult(mode="homeo", measured_from_ms=10.0, num_replicas=2)
        res.records = [
            _record(5.0, 6.0, "local"),          # before warmup: excluded
            _record(20.0, 22.0, "local", family="NewOrder"),
            _record(30.0, 32.0, "local", family="Payment"),
            _record(40.0, 240.0, "sync", family="NewOrder",
                    comm_ms=195.0, solver_ms=5.0, local_ms=2.0),
            _record(50.0, 51.0, "failed"),
        ]
        res.measured_to_ms = 1010.0
        return res

    def test_warmup_excluded(self):
        res = self._result()
        assert len(res.latencies()) == 3

    def test_family_filter(self):
        res = self._result()
        assert len(res.latencies("NewOrder")) == 2

    def test_throughput(self):
        res = self._result()
        # 3 measured commits over 1.0 s across 2 replicas.
        assert res.throughput_per_replica() == pytest.approx(1.5)
        assert res.total_throughput() == pytest.approx(3.0)

    def test_sync_ratio(self):
        res = self._result()
        assert res.sync_ratio == pytest.approx(1 / 3)

    def test_breakdown(self):
        res = self._result()
        b = res.breakdown_means()
        assert b["comm"] == 195.0 and b["solver"] == 5.0

    def test_cdf(self):
        res = self._result()
        cdf = dict(res.latency_cdf([5.0, 300.0]))
        assert cdf[5.0] == pytest.approx(2 / 3)
        assert cdf[300.0] == 1.0

    def test_stats_shape(self):
        stats = LatencyStats.of([1.0, 2.0, 3.0, 4.0, 100.0])
        assert stats.p50 <= stats.p90 <= stats.p99 <= stats.p100
        assert stats.count == 5
