"""Tests for the discrete-event runner's timing model."""

import random

import pytest

from repro.sim.experiments import (
    run_adaptive_skew,
    run_contention,
    run_geo,
    run_micro,
    skewed_client_counts,
    solver_time_model,
    zipf_weights,
)
from repro.sim.network import rtt_matrix_for
from repro.sim.runner import SimConfig, SimRequest, _run_2pc, simulate


class _StubCluster:
    """Deterministic decision source: sync every Nth submission.

    ``participants`` (when given) is reported on every synced outcome,
    mimicking a kernel with participant-scoped negotiation; without it
    the outcome carries no participant info and the simulator must
    fall back to cluster-wide pricing.
    """

    def __init__(self, sync_every=0, participants=None):
        self.sync_every = sync_every
        self.participants = participants
        self.count = 0

    def submit(self, tx_name, params):
        self.count += 1
        synced = self.sync_every and self.count % self.sync_every == 0

        class Outcome:
            pass

        out = Outcome()
        out.synced = bool(synced)
        if self.participants is not None:
            out.participants = self.participants if synced else ()
        return out


def _request_fn(rng, replica):
    return SimRequest("T", {}, (rng.randrange(50),), family="T")


def _config(mode, **kw):
    defaults = dict(
        mode=mode, num_replicas=2, clients_per_replica=4,
        rtt_ms=100.0, max_txns=800, seed=1,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


class TestTimingModel:
    def test_local_latency_is_service_scale(self):
        res = simulate(_config("local"), _StubCluster(), _request_fn)
        assert res.committed == 800
        assert res.latency_stats().p50 < 10.0

    def test_2pc_latency_floor_is_two_rtt(self):
        res = simulate(_config("2pc"), _StubCluster(), _request_fn)
        stats = res.latency_stats()
        assert stats.p50 >= 200.0

    def test_homeo_without_violations_matches_local(self):
        res = simulate(_config("homeo"), _StubCluster(sync_every=0), _request_fn)
        assert res.negotiations == 0
        assert res.latency_stats().p97 < 25.0

    def test_homeo_violations_pay_two_rtt_plus_solver(self):
        config = _config("homeo", solver_ms=30.0)
        res = simulate(config, _StubCluster(sync_every=10), _request_fn)
        assert res.negotiations > 0
        synced = [r for r in res.records if r.kind == "sync"]
        for r in synced:
            assert r.comm_ms == pytest.approx(200.0)
            assert r.solver_ms == pytest.approx(30.0)
            assert r.latency_ms >= 230.0

    def test_opt_has_no_solver_cost(self):
        config = _config("opt", solver_ms=30.0)
        res = simulate(config, _StubCluster(sync_every=10), _request_fn)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced and all(r.solver_ms == 0.0 for r in synced)

    def test_sync_ratio_matches_stub(self):
        res = simulate(_config("homeo"), _StubCluster(sync_every=5), _request_fn)
        assert res.sync_ratio == pytest.approx(0.2, abs=0.05)

    def test_2pc_hot_lock_queueing(self):
        """All clients hammering one item must queue behind the 2-RTT
        lock hold and eventually hit the timeout."""

        def hot_request(rng, replica):
            return SimRequest("T", {}, (0,), family="T")

        config = _config("2pc", max_txns=300, clients_per_replica=8)
        res = simulate(config, _StubCluster(), hot_request)
        assert res.aborted_attempts > 0
        assert res.latency_stats().p99 >= 1000.0  # the MySQL-style tail

    def test_determinism(self):
        a = simulate(_config("homeo"), _StubCluster(sync_every=7), _request_fn)
        b = simulate(_config("homeo"), _StubCluster(sync_every=7), _request_fn)
        assert a.latencies() == b.latencies()

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            simulate(_config("bogus"), _StubCluster(), _request_fn)


class TestDurationBound:
    def test_no_record_starts_past_duration(self):
        """Regression: the loop bound used the *previous* iteration's
        clock, so a client popped past the horizon still executed one
        extra transaction."""
        config = _config("local", max_txns=100_000, duration_ms=80.0)
        res = simulate(config, _StubCluster(), _request_fn)
        assert res.records, "expected a populated run"
        assert max(r.start_ms for r in res.records) < 80.0
        assert res.measured_to_ms < 80.0

    def test_duration_bound_under_2pc_retries(self):
        config = _config(
            "2pc", max_txns=100_000, duration_ms=500.0, clients_per_replica=8,
        )
        res = simulate(config, _StubCluster(), lambda rng, r: SimRequest("T", {}, (0,)))
        assert max(r.start_ms for r in res.records) < 500.0


class Test2pcCoreAccounting:
    """Satellite fix: the core is released while a transaction blocks
    on item locks, identically for committing and aborting waiters."""

    def _call(self, lock_horizon, max_retries=0):
        config = SimConfig(mode="2pc", lock_timeout_ms=1000.0, max_retries=max_retries)
        cores = [[0.0]]
        lock_free = {("2pc", "k"): lock_horizon}
        request = SimRequest("T", {}, ("k",), family="T")
        end, record = _run_2pc(
            config, _StubCluster(), request, 0, 0.0, 5.0,
            cores, lock_free, 200.0, random.Random(0),
        )
        return end, record, cores

    def test_committing_and_aborting_waiters_occupy_cores_identically(self):
        # Same dispatch, same service; one waiter gets the lock after
        # 300 ms and commits, the other would wait 3000 ms and aborts.
        end_c, rec_c, cores_c = self._call(lock_horizon=300.0)
        end_a, rec_a, cores_a = self._call(lock_horizon=3000.0)
        assert rec_c.kind == "2pc" and rec_a.kind == "failed"
        # Both occupied the core for exactly the 5 ms of CPU work --
        # the lock wait costs no server time on either path.
        assert cores_c == cores_a == [[5.0]]
        # The commit still pays wait + service + 2 RTT in latency (the
        # lock hold keeps execution inside the critical section).
        assert end_c == pytest.approx(300.0 + 5.0 + 200.0)
        assert end_a == pytest.approx(1000.0)

    def test_commit_waiters_do_not_pin_cores(self):
        """Macro regression: long lock waiters that eventually commit
        must not starve unrelated transactions of cores.  Under the
        seed model (core held through the wait) the cold family's p50
        here was >10x the 2-RTT floor."""
        state = {"n": 0}

        def request_fn(rng, replica):
            state["n"] += 1
            if state["n"] % 8 == 0:
                return SimRequest("cold", {}, (1000 + state["n"],), family="cold")
            return SimRequest("hot", {}, (0,), family="hot")

        config = _config(
            "2pc", clients_per_replica=8, max_txns=600,
            lock_timeout_ms=10_000.0, seed=2, cores_per_replica=2,
        )
        res = simulate(config, _StubCluster(), request_fn)
        assert res.aborted_attempts == 0  # every waiter commits
        cold = res.latency_stats("cold")
        assert cold.count > 20
        # Cold transactions ride the free cores: ~2 RTT + service.
        assert cold.p50 < 250.0
        assert res.latency_stats("hot").p50 > 1000.0  # the hot chain queues


class TestWindowedDriver:
    """The concurrent runtime driven with real interleaving."""

    def test_contention_run_produces_real_races(self):
        res = run_contention(
            "homeo", num_items=8, refill=20, clients_per_replica=8,
            max_txns=1000, seed=0,
        )
        assert res.committed == 1000
        assert res.negotiations > 0
        contested = [r for r in res.records if r.kind == "sync" and r.vote_ms > 0]
        assert contested, "expected contested elections"
        losers = [r for r in res.records if r.retries > 0]
        assert losers, "expected transactions that lost a vote"
        # A loser's queueing is the election it lost: at least the
        # winner's negotiation (2 scoped RTTs at 100 ms) long.
        assert max(r.wait_ms for r in losers) >= 200.0
        assert res.aborted_attempts == sum(r.retries for r in res.records)

    def test_contention_determinism(self):
        """Two runs with the same seed produce identical records --
        the seeded arbitration order is deterministic end to end."""
        a = run_contention("homeo", num_items=8, refill=20, max_txns=600, seed=5)
        b = run_contention("homeo", num_items=8, refill=20, max_txns=600, seed=5)
        assert a.records == b.records
        assert a.aborted_attempts == b.aborted_attempts

    def test_disjoint_groups_priced_independently(self):
        """Geo-partitioned contention: each group's negotiations are
        priced from its own edge, as in the per-transaction path."""
        res = run_contention(
            "homeo", groups=((0, 1), (2, 3)), num_replicas=4,
            num_items=6, refill=16, clients_per_replica=6,
            max_txns=800, seed=1, config_overrides={"solver_ms": 0.0},
        )
        matrix = rtt_matrix_for(4)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced
        for r in synced:
            if r.participants == (0, 1):
                assert r.comm_ms == pytest.approx(2 * matrix[0][1])
            elif r.participants == (2, 3):
                assert r.comm_ms == pytest.approx(2 * matrix[2][3])

    def test_window_ms_without_submit_window_falls_back(self):
        """A per-transaction kernel ignores window_ms and keeps the
        legacy per-key-gate path."""
        config = _config("homeo", window_ms=5.0)
        res = simulate(config, _StubCluster(sync_every=10), _request_fn)
        assert res.committed == 800
        assert res.negotiations > 0

    def test_window_zero_keeps_legacy_path_for_concurrent_kernels(self):
        res = run_contention(
            "homeo", num_items=8, refill=20, max_txns=400, seed=3,
            config_overrides={"window_ms": 0.0},
        )
        assert res.committed == 400
        assert all(r.vote_ms == 0.0 for r in res.records)


class TestPerEdgePricing:
    """Negotiations are priced from the RTT edges the participants
    actually use, not the cluster-wide worst edge."""

    def _table1_config(self, **kw):
        defaults = dict(
            mode="homeo", num_replicas=5, clients_per_replica=2,
            rtt_matrix=rtt_matrix_for(5), max_txns=400, seed=3,
        )
        defaults.update(kw)
        return SimConfig(**defaults)

    def test_ue_uw_violation_priced_from_edge(self):
        """Table 1 regression: a (0, 1) = UE<->UW violation costs
        2 x 64 = 128 ms, not 2 x 372 = 744 ms."""
        config = self._table1_config()
        stub = _StubCluster(sync_every=10, participants=(0, 1))
        res = simulate(config, stub, _request_fn)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced
        for r in synced:
            assert r.comm_ms == pytest.approx(128.0)
            assert r.participants == (0, 1)

    def test_flat_fallback_without_participants(self):
        """Kernels that report no participant set pay the diameter."""
        config = self._table1_config()
        stub = _StubCluster(sync_every=10)  # no participants attribute
        res = simulate(config, stub, _request_fn)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced
        for r in synced:
            assert r.comm_ms == pytest.approx(744.0)

    def test_single_site_negotiation_is_near_free(self):
        config = self._table1_config()
        stub = _StubCluster(sync_every=10, participants=(2,))
        res = simulate(config, stub, _request_fn)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced
        for r in synced:
            assert r.comm_ms == pytest.approx(1.0)  # 2 x the 0.5 diagonal

    def test_run_geo_scopes_and_prices_by_group(self):
        """End-to-end: the geo workload's (0, 1) group never pays more
        than its own 64 ms edge unless extra sites join the round."""
        res = run_geo(
            "homeo", groups=((0, 1),), num_replicas=5,
            clients_per_replica=2, max_txns=500, seed=1,
            config_overrides={"solver_ms": 0.0},
        )
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced, "expected negotiations"
        for r in synced:
            assert r.participants == (0, 1)
            assert r.comm_ms == pytest.approx(128.0)
        assert set(res.participant_histogram()) == {2}


class TestExperimentRunners:
    def test_solver_time_model_grows_with_lookahead(self):
        assert solver_time_model(100) > solver_time_model(10)

    def test_run_micro_smoke(self):
        res = run_micro("homeo", rtt_ms=50.0, max_txns=600, num_items=40)
        assert res.committed == 600
        assert res.mode == "homeo"
        assert res.latency_stats().count > 0

    def test_run_micro_reports_escrow_stats(self):
        """A homeostasis run folds the kernel's escrow fast-path
        counters into the result; the local baseline has no treaty
        kernel and reports nothing."""
        res = run_micro("homeo", max_txns=400, num_items=40)
        assert res.escrow["installs"] > 0
        assert res.escrow["eligible_ratio"] > 0.0
        assert res.escrow["sites_on_escrow"] > 0
        assert res.escrow["fast_commits"] + res.escrow["settled_commits"] > 0
        assert run_micro("local", max_txns=200, num_items=40).escrow == {}

    def test_run_micro_modes_ordering(self):
        """The headline result at smoke scale: local >= homeo >> 2pc."""
        local = run_micro("local", max_txns=800, num_items=40)
        homeo = run_micro("homeo", max_txns=800, num_items=40)
        two_pc = run_micro("2pc", max_txns=800, num_items=40)
        t_local = local.throughput_per_replica()
        t_homeo = homeo.throughput_per_replica()
        t_2pc = two_pc.throughput_per_replica()
        assert t_local >= t_homeo > 3 * t_2pc


class TestAdaptiveSkew:
    def test_skewed_client_counts_partition_exactly(self):
        for skew in (0.0, 1.0, 2.5):
            counts = skewed_client_counts(32, zipf_weights(4, skew))
            assert sum(counts) == 32
            assert all(c >= 1 for c in counts)
            # Hotter ranks never get fewer clients than colder ones.
            assert list(counts) == sorted(counts, reverse=True)

    def test_per_replica_client_sequence_drives_the_loop(self):
        config = SimConfig(mode="homeo", num_replicas=3,
                           clients_per_replica=(4, 1, 1))
        assert config.client_counts() == [4, 1, 1]
        with pytest.raises(ValueError):
            SimConfig(mode="homeo", num_replicas=2,
                      clients_per_replica=(1, 1, 1)).client_counts()

    def test_adaptive_beats_static_at_high_skew(self):
        """The headline invariant at smoke scale, on the micro
        workload: demand-weighted allocation plus the watermark
        refresh strictly lowers the sync ratio under Zipf site skew --
        even counting every refresh round against it."""
        static = run_adaptive_skew("static", skew=2.0, max_txns=900, seed=0)
        adaptive = run_adaptive_skew("adaptive", skew=2.0, max_txns=900, seed=0)
        assert adaptive.sync_ratio < static.sync_ratio
        assert (
            adaptive.sync_ratio + adaptive.rebalance_ratio
            < static.sync_ratio
        )

    def test_rebalance_records_are_priced(self):
        """Refresh rounds must cost simulated time: every rebalancing
        record carries a positive rebalance_ms and the run's rebalance
        total matches the records."""
        res = run_adaptive_skew(
            "adaptive", skew=2.0, workload="micro", num_items=12,
            refill=30, max_txns=900, watermark=0.6, seed=0,
        )
        rebalancers = [r for r in res.records if r.rebalances]
        assert rebalancers, "expected watermark refreshes at this scale"
        for r in rebalancers:
            assert r.kind == "local"  # the triggering txn committed
            assert r.rebalance_ms > 0.0
        assert res.rebalances == sum(r.rebalances for r in res.records)

    def test_adaptive_skew_determinism(self):
        a = run_adaptive_skew("adaptive", skew=1.5, max_txns=500, seed=3)
        b = run_adaptive_skew("adaptive", skew=1.5, max_txns=500, seed=3)
        assert a.sync_ratio == b.sync_ratio
        assert a.rebalances == b.rebalances
        assert [r.end_ms for r in a.records] == [r.end_ms for r in b.records]

    def test_validate_mode_holds_through_a_run(self):
        """The global treaty is never weakened: a validate-mode
        adaptive run (H1 + per-site H2 + untouched non-participants
        asserted at every install) completes without protocol errors."""
        res = run_adaptive_skew(
            "adaptive", skew=2.0, num_items=20, max_txns=400,
            validate=True, seed=1,
        )
        assert res.committed == 400
