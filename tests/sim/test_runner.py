"""Tests for the discrete-event runner's timing model."""

import pytest

from repro.sim.experiments import run_geo, run_micro, solver_time_model
from repro.sim.network import rtt_matrix_for
from repro.sim.runner import SimConfig, SimRequest, simulate


class _StubCluster:
    """Deterministic decision source: sync every Nth submission.

    ``participants`` (when given) is reported on every synced outcome,
    mimicking a kernel with participant-scoped negotiation; without it
    the outcome carries no participant info and the simulator must
    fall back to cluster-wide pricing.
    """

    def __init__(self, sync_every=0, participants=None):
        self.sync_every = sync_every
        self.participants = participants
        self.count = 0

    def submit(self, tx_name, params):
        self.count += 1
        synced = self.sync_every and self.count % self.sync_every == 0

        class Outcome:
            pass

        out = Outcome()
        out.synced = bool(synced)
        if self.participants is not None:
            out.participants = self.participants if synced else ()
        return out


def _request_fn(rng, replica):
    return SimRequest("T", {}, (rng.randrange(50),), family="T")


def _config(mode, **kw):
    defaults = dict(
        mode=mode, num_replicas=2, clients_per_replica=4,
        rtt_ms=100.0, max_txns=800, seed=1,
    )
    defaults.update(kw)
    return SimConfig(**defaults)


class TestTimingModel:
    def test_local_latency_is_service_scale(self):
        res = simulate(_config("local"), _StubCluster(), _request_fn)
        assert res.committed == 800
        assert res.latency_stats().p50 < 10.0

    def test_2pc_latency_floor_is_two_rtt(self):
        res = simulate(_config("2pc"), _StubCluster(), _request_fn)
        stats = res.latency_stats()
        assert stats.p50 >= 200.0

    def test_homeo_without_violations_matches_local(self):
        res = simulate(_config("homeo"), _StubCluster(sync_every=0), _request_fn)
        assert res.negotiations == 0
        assert res.latency_stats().p97 < 25.0

    def test_homeo_violations_pay_two_rtt_plus_solver(self):
        config = _config("homeo", solver_ms=30.0)
        res = simulate(config, _StubCluster(sync_every=10), _request_fn)
        assert res.negotiations > 0
        synced = [r for r in res.records if r.kind == "sync"]
        for r in synced:
            assert r.comm_ms == pytest.approx(200.0)
            assert r.solver_ms == pytest.approx(30.0)
            assert r.latency_ms >= 230.0

    def test_opt_has_no_solver_cost(self):
        config = _config("opt", solver_ms=30.0)
        res = simulate(config, _StubCluster(sync_every=10), _request_fn)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced and all(r.solver_ms == 0.0 for r in synced)

    def test_sync_ratio_matches_stub(self):
        res = simulate(_config("homeo"), _StubCluster(sync_every=5), _request_fn)
        assert res.sync_ratio == pytest.approx(0.2, abs=0.05)

    def test_2pc_hot_lock_queueing(self):
        """All clients hammering one item must queue behind the 2-RTT
        lock hold and eventually hit the timeout."""

        def hot_request(rng, replica):
            return SimRequest("T", {}, (0,), family="T")

        config = _config("2pc", max_txns=300, clients_per_replica=8)
        res = simulate(config, _StubCluster(), hot_request)
        assert res.aborted_attempts > 0
        assert res.latency_stats().p99 >= 1000.0  # the MySQL-style tail

    def test_determinism(self):
        a = simulate(_config("homeo"), _StubCluster(sync_every=7), _request_fn)
        b = simulate(_config("homeo"), _StubCluster(sync_every=7), _request_fn)
        assert a.latencies() == b.latencies()

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            simulate(_config("bogus"), _StubCluster(), _request_fn)


class TestPerEdgePricing:
    """Negotiations are priced from the RTT edges the participants
    actually use, not the cluster-wide worst edge."""

    def _table1_config(self, **kw):
        defaults = dict(
            mode="homeo", num_replicas=5, clients_per_replica=2,
            rtt_matrix=rtt_matrix_for(5), max_txns=400, seed=3,
        )
        defaults.update(kw)
        return SimConfig(**defaults)

    def test_ue_uw_violation_priced_from_edge(self):
        """Table 1 regression: a (0, 1) = UE<->UW violation costs
        2 x 64 = 128 ms, not 2 x 372 = 744 ms."""
        config = self._table1_config()
        stub = _StubCluster(sync_every=10, participants=(0, 1))
        res = simulate(config, stub, _request_fn)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced
        for r in synced:
            assert r.comm_ms == pytest.approx(128.0)
            assert r.participants == (0, 1)

    def test_flat_fallback_without_participants(self):
        """Kernels that report no participant set pay the diameter."""
        config = self._table1_config()
        stub = _StubCluster(sync_every=10)  # no participants attribute
        res = simulate(config, stub, _request_fn)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced
        for r in synced:
            assert r.comm_ms == pytest.approx(744.0)

    def test_single_site_negotiation_is_near_free(self):
        config = self._table1_config()
        stub = _StubCluster(sync_every=10, participants=(2,))
        res = simulate(config, stub, _request_fn)
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced
        for r in synced:
            assert r.comm_ms == pytest.approx(1.0)  # 2 x the 0.5 diagonal

    def test_run_geo_scopes_and_prices_by_group(self):
        """End-to-end: the geo workload's (0, 1) group never pays more
        than its own 64 ms edge unless extra sites join the round."""
        res = run_geo(
            "homeo", groups=((0, 1),), num_replicas=5,
            clients_per_replica=2, max_txns=500, seed=1,
            config_overrides={"solver_ms": 0.0},
        )
        synced = [r for r in res.records if r.kind == "sync"]
        assert synced, "expected negotiations"
        for r in synced:
            assert r.participants == (0, 1)
            assert r.comm_ms == pytest.approx(128.0)
        assert set(res.participant_histogram()) == {2}


class TestExperimentRunners:
    def test_solver_time_model_grows_with_lookahead(self):
        assert solver_time_model(100) > solver_time_model(10)

    def test_run_micro_smoke(self):
        res = run_micro("homeo", rtt_ms=50.0, max_txns=600, num_items=40)
        assert res.committed == 600
        assert res.mode == "homeo"
        assert res.latency_stats().count > 0

    def test_run_micro_modes_ordering(self):
        """The headline result at smoke scale: local >= homeo >> 2pc."""
        local = run_micro("local", max_txns=800, num_items=40)
        homeo = run_micro("homeo", max_txns=800, num_items=40)
        two_pc = run_micro("2pc", max_txns=800, num_items=40)
        t_local = local.throughput_per_replica()
        t_homeo = homeo.throughput_per_replica()
        t_2pc = two_pc.throughput_per_replica()
        assert t_local >= t_homeo > 3 * t_2pc
