"""Tests for Fu-Malik MaxSAT and the specialized budget solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.solver.cores import is_feasible, minimal_unsat_core
from repro.solver.fastmaxsat import (
    BudgetInstance,
    brute_force_budget,
    solve_budget_allocation,
)
from repro.solver.maxsat import fu_malik_maxsat


def le(coeffs, b):
    return LinearConstraint.make(LinearExpr.make(coeffs), "<=", b)


class TestCores:
    def test_satisfiable_returns_none(self):
        assert minimal_unsat_core([], [le({"x": 1}, 5)]) is None

    def test_minimal_core_found(self):
        hard = [le({"x": -1}, -10)]  # x >= 10
        soft = [le({"y": 1}, 3), le({"x": 1}, 5), le({"z": 1}, 0)]
        core = minimal_unsat_core(hard, soft)
        assert core == [1]  # only x <= 5 conflicts with x >= 10

    def test_core_is_minimal(self):
        hard = []
        soft = [le({"x": 1}, 0), le({"x": -1}, -5), le({"y": 1}, 1)]
        core = minimal_unsat_core(hard, soft)
        assert core is not None
        assert sorted(core) == [0, 1]
        # every proper subset is feasible
        for drop in core:
            remaining = [soft[i] for i in core if i != drop]
            assert is_feasible(remaining)


class TestFuMalik:
    def test_all_satisfiable_zero_cost(self):
        res = fu_malik_maxsat([], [le({"x": 1}, 5), le({"x": -1}, 0)])
        assert res.cost == 0
        assert res.num_satisfied == 2

    def test_paper_appendix_c2_example(self):
        """The worked example: hard cx + cy <= 20 with soft bounds
        {cy >= 12, cx >= 8}, {cy >= 13, cx >= 7}, {cy >= 12, cx >= 8}.
        The paper's optimum cy = 12, cx = 8 satisfies executions S1
        and S3 fully plus the cx half of S2: 5 of the 6 individual
        constraints, i.e. cost 1 (only cy >= 13 is sacrificed)."""
        hard = [le({"cx": 1, "cy": 1}, 20)]
        soft = [
            le({"cy": -1}, -12), le({"cx": -1}, -8),
            le({"cy": -1}, -13), le({"cx": -1}, -7),
            le({"cy": -1}, -12), le({"cx": -1}, -8),
        ]
        res = fu_malik_maxsat(hard, soft)
        assert res.num_satisfied == 5
        assert res.cost == 1
        # The model is (up to ties) the paper's configuration.
        assert res.assignment["cx"] + res.assignment["cy"] <= 20
        assert res.assignment["cy"] >= 12 and res.assignment["cx"] >= 8

    def test_infeasible_hard_raises(self):
        with pytest.raises(ValueError):
            fu_malik_maxsat([le({"x": 1}, 0), le({"x": -1}, -1)], [])

    def test_model_satisfies_hard(self):
        hard = [le({"x": 1, "y": 1}, 4)]
        soft = [le({"x": -1}, -3), le({"y": -1}, -3)]
        res = fu_malik_maxsat(hard, soft)
        assert hard[0].satisfied_by({v: res.assignment.get(v, 0) for v in ("x", "y")})
        assert res.cost == 1


class TestBudgetSolver:
    def test_simple_allocation(self):
        inst = BudgetInstance(
            sites=["a", "b"], required_total=20,
            soft_upper={"a": [8, 7, 8], "b": [12, 13, 12]},
        )
        sol = solve_budget_allocation(inst)
        assert sol.satisfied == brute_force_budget(inst).satisfied == 5

    def test_respects_hard_caps(self):
        inst = BudgetInstance(
            sites=["a", "b"], required_total=5,
            soft_upper={"a": [0], "b": [0]},
            hard_upper={"a": 4, "b": 4},
        )
        sol = solve_budget_allocation(inst)
        assert sol.assignment["a"] <= 4 and sol.assignment["b"] <= 4
        assert sol.assignment["a"] + sol.assignment["b"] >= 5

    def test_abstain_when_profitable(self):
        # Satisfying b's three tight bounds requires a to absorb.
        inst = BudgetInstance(
            sites=["a", "b"], required_total=10,
            soft_upper={"a": [9], "b": [0, 0, 0]},
        )
        sol = solve_budget_allocation(inst)
        assert sol.satisfied >= 3

    def test_slack_distribution_weighted(self):
        inst = BudgetInstance(
            sites=["a", "b"], required_total=0,
            soft_upper={"a": [50], "b": [50]},
            hard_upper={"a": 50, "b": 50},
            slack_weights={"a": 3, "b": 1},
        )
        sol = solve_budget_allocation(inst)
        # Budget slack of 100 should lean 3:1 toward lowering a.
        assert sol.assignment["a"] < sol.assignment["b"]
        assert sol.assignment["a"] + sol.assignment["b"] >= 0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100_000))
    def test_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        sites = ["s0", "s1", "s2"][: rng.randint(2, 3)]
        inst = BudgetInstance(
            sites=list(sites),
            required_total=rng.randint(-5, 15),
            soft_upper={
                s: [rng.randint(-5, 12) for _ in range(rng.randint(0, 4))]
                for s in sites
            },
        )
        fast = solve_budget_allocation(inst)
        brute = brute_force_budget(inst)
        assert fast.satisfied == brute.satisfied
        assert sum(fast.assignment.values()) >= inst.required_total

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_matches_fumalik(self, seed):
        """The two MaxSAT engines find the same optimum."""
        rng = random.Random(seed)
        sites = ["s0", "s1"]
        total = rng.randint(-5, 10)
        bounds = {
            s: [rng.randint(-4, 8) for _ in range(rng.randint(1, 3))] for s in sites
        }
        inst = BudgetInstance(sites=list(sites), required_total=total, soft_upper=bounds)
        fast = solve_budget_allocation(inst)

        hard = [le({s: -1 for s in sites}, -total)]
        soft = [le({s: 1}, u) for s in sites for u in bounds[s]]
        fm = fu_malik_maxsat(hard, soft)
        assert len(soft) - fm.cost == fast.satisfied
