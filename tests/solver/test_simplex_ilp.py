"""Tests for the exact simplex and branch-and-bound ILP."""

import itertools
import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.solver.ilp import ilp_feasible, ilp_optimize
from repro.solver.simplex import lp_solve


def le(coeffs, b):
    return LinearConstraint.make(LinearExpr.make(coeffs), "<=", b)


def eq(coeffs, b):
    return LinearConstraint.make(LinearExpr.make(coeffs), "=", b)


class TestSimplex:
    def test_feasible_assignment_satisfies(self):
        cons = [le({"x": 1, "y": 2}, 14), le({"x": -3, "y": 1}, 0), le({"y": -1}, -1)]
        res = lp_solve(cons)
        assert res.feasible
        for c in cons:
            total = sum(Fraction(coef) * res.assignment[v] for v, coef in c.expr.coeffs)
            assert total <= c.bound

    def test_optimum_known(self):
        # max 3x + 4y st x + 2y <= 14, 3x - y >= 0, x - y <= 2
        cons = [le({"x": 1, "y": 2}, 14), le({"x": -3, "y": 1}, 0), le({"x": 1, "y": -1}, 2)]
        res = lp_solve(cons, LinearExpr.make({"x": 3, "y": 4}), maximize=True)
        assert res.status == "optimal"
        assert res.value == 34  # x=6, y=4

    def test_minimize(self):
        cons = [le({"x": -1}, -2), le({"x": 1}, 10)]
        res = lp_solve(cons, LinearExpr.make({"x": 1}))
        assert res.value == 2

    def test_equality_constraints(self):
        cons = [eq({"x": 1, "y": 1}, 10), le({"x": -1}, 0), le({"y": -1}, 0)]
        res = lp_solve(cons, LinearExpr.make({"x": 1}), maximize=True)
        assert res.value == 10

    def test_infeasible(self):
        assert lp_solve([le({"x": 1}, 1), le({"x": -1}, -3)]).status == "infeasible"

    def test_unbounded(self):
        res = lp_solve([le({"x": -1}, 0)], LinearExpr.make({"x": 1}), maximize=True)
        assert res.status == "unbounded"

    def test_degenerate_optimum_terminates(self):
        # Degenerate vertex at the optimum; Bland's rule must terminate.
        cons = [
            le({"x": 1}, 1),
            le({"y": 1}, 1),
            le({"x": 1, "y": 1}, 2),
            le({"x": -1}, 0),
            le({"y": -1}, 0),
        ]
        res = lp_solve(cons, LinearExpr.make({"x": 1, "y": 1}), maximize=True)
        assert res.status == "optimal"
        assert res.value == 2

    def test_exactness_no_float_error(self):
        # Rational optimum x = 1/3 is represented exactly (note: the
        # instance avoids single-variable gcd tightening, which would
        # legitimately round integer-semantics constraints).
        cons = [le({"x": 3, "y": 1}, 1), le({"x": -3, "y": 1}, -1), le({"y": 1}, 0), le({"y": -1}, 0)]
        res = lp_solve(cons, LinearExpr.make({"x": 1}), maximize=True)
        assert res.status == "optimal"
        assert res.assignment["x"] == Fraction(1, 3)


class TestILP:
    def test_integrality_forces_rounding(self):
        # LP optimum of max x st 2x <= 5 is 2.5; ILP must give 2.
        res = ilp_optimize([le({"x": 2}, 5)], LinearExpr.make({"x": 1}), maximize=True)
        # note: gcd-tightening already rewrites 2x<=5 to x<=2
        assert res.value == 2

    def test_parity_infeasible(self):
        assert ilp_feasible([eq({"x": 2, "y": -2}, 1)]).status == "infeasible"

    def test_knapsack_optimum(self):
        # max 8a + 11b + 6c st 5a + 7b + 4c <= 14, 0 <= vars <= 1
        cons = [le({"a": 5, "b": 7, "c": 4}, 14)]
        for v in "abc":
            cons += [le({v: 1}, 1), le({v: -1}, 0)]
        res = ilp_optimize(cons, LinearExpr.make({"a": 8, "b": 11, "c": 6}), maximize=True)
        assert res.value == 19  # a=1, b=1

    def test_feasible_point_is_integral_and_valid(self):
        cons = [le({"x": 3, "y": 5}, 15), le({"x": -1, "y": -1}, -2)]
        res = ilp_feasible(cons)
        assert res.feasible
        for c in cons:
            assert c.satisfied_by(res.assignment)

    def test_unbounded_with_integer_point(self):
        res = ilp_optimize([le({"x": -1}, 0)], LinearExpr.make({"x": 1}), maximize=True)
        assert res.status == "unbounded"


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_ilp_matches_bruteforce_on_random_boxes(seed):
    """Random small bounded ILPs: branch and bound agrees with brute
    force over the box."""
    rng = random.Random(seed)
    names = ["a", "b"]
    lo, hi = -4, 4
    cons = [le({n: 1}, hi) for n in names] + [le({n: -1}, -lo) for n in names]
    for _ in range(rng.randint(1, 3)):
        coeffs = {n: rng.randint(-3, 3) for n in names}
        cons.append(le(coeffs, rng.randint(-6, 6)))
    objective = LinearExpr.make({n: rng.randint(-3, 3) for n in names})

    best = None
    for combo in itertools.product(range(lo, hi + 1), repeat=len(names)):
        point = dict(zip(names, combo))
        if all(c.satisfied_by(point) for c in cons):
            val = objective.evaluate(point)
            if best is None or val > best:
                best = val

    res = ilp_optimize(cons, objective, maximize=True)
    if best is None:
        assert res.status == "infeasible"
    else:
        assert res.status == "optimal"
        assert res.value == best
