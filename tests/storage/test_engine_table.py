"""Tests for the transactional engine and the relational veneer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.engine import LocalEngine, TxnAborted
from repro.storage.kvstore import KVStore
from repro.storage.table import Schema, Table, TableError


class TestEngine:
    def test_commit_applies(self):
        engine = LocalEngine()
        txn = engine.begin()
        txn.write("x", 5)
        txn.commit()
        assert engine.peek("x") == 5
        assert engine.committed == 1

    def test_abort_rolls_back(self):
        engine = LocalEngine()
        engine.poke("x", 1)
        txn = engine.begin()
        assert txn.read("x") == 1
        txn.write("x", 99)
        txn.write("y", 42)
        txn.abort()
        assert engine.peek("x") == 1
        assert engine.peek("y") == 0
        assert engine.aborted == 1

    def test_finished_txn_rejects_operations(self):
        engine = LocalEngine()
        txn = engine.begin()
        txn.commit()
        with pytest.raises(TxnAborted):
            txn.read("x")
        with pytest.raises(TxnAborted):
            txn.commit()

    def test_locks_released_on_commit(self):
        engine = LocalEngine()
        t1 = engine.begin()
        t1.write("x", 1)
        t1.commit()
        t2 = engine.begin()
        t2.write("x", 2)  # must not block
        t2.commit()
        assert engine.peek("x") == 2

    def test_dirty_tracking(self):
        engine = LocalEngine()
        txn = engine.begin()
        txn.write("a", 1)
        txn.write("b", 2)
        txn.commit()
        assert engine.dirty_objects() == {"a", "b"}
        engine.checkpoint()
        assert engine.dirty_objects() == set()

    def test_aborted_writes_not_dirty(self):
        engine = LocalEngine()
        txn = engine.begin()
        txn.write("a", 1)
        txn.abort()
        assert engine.dirty_objects() == set()

    def test_log_captured_per_txn(self):
        engine = LocalEngine()
        txn = engine.begin()
        txn.emit(3)
        txn.emit(4)
        assert txn.log == [3, 4]

    @settings(max_examples=40)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from("abc"), st.integers(-9, 9), st.booleans()
            ),
            max_size=10,
        )
    )
    def test_commit_abort_isolation_property(self, ops):
        """Aborted transactions leave no trace; committed ones all do."""
        engine = LocalEngine()
        expected: dict[str, int] = {}
        for name, value, commit in ops:
            txn = engine.begin()
            txn.write(name, value)
            if commit:
                txn.commit()
                expected[name] = value
            else:
                txn.abort()
        assert engine.store == KVStore.from_mapping(expected)


class TestTable:
    def _schema(self):
        return Schema(
            name="stock", key_columns=("w", "i"), value_columns=("qty", "ytd")
        )

    def test_insert_get(self):
        store = KVStore()
        table = Table.over_store(self._schema(), store)
        table.insert((1, 2), {"qty": 50, "ytd": 0})
        assert table.get((1, 2), "qty") == 50
        assert table.exists((1, 2))
        assert store.get("stock_qty[1,2]") == 50  # L++ naming scheme

    def test_duplicate_insert_rejected(self):
        table = Table.over_store(self._schema(), KVStore())
        table.insert((1, 2), {"qty": 1, "ytd": 0})
        with pytest.raises(TableError):
            table.insert((1, 2), {"qty": 9, "ytd": 0})

    def test_missing_column_on_insert(self):
        table = Table.over_store(self._schema(), KVStore())
        with pytest.raises(TableError):
            table.insert((0, 0), {"qty": 1})

    def test_update_and_read_row(self):
        table = Table.over_store(self._schema(), KVStore())
        table.insert((0, 1), {"qty": 5, "ytd": 2})
        table.update((0, 1), "qty", 4)
        assert table.read_row((0, 1)) == {"qty": 4, "ytd": 2}

    def test_delete_frees_slot(self):
        table = Table.over_store(self._schema(), KVStore())
        table.insert((0, 0), {"qty": 5, "ytd": 0})
        table.delete((0, 0))
        assert not table.exists((0, 0))
        table.insert((0, 0), {"qty": 7, "ytd": 0})  # slot reusable
        assert table.get((0, 0), "qty") == 7

    def test_missing_row_operations(self):
        table = Table.over_store(self._schema(), KVStore())
        with pytest.raises(TableError):
            table.get((9, 9), "qty")
        with pytest.raises(TableError):
            table.update((9, 9), "qty", 0)
        with pytest.raises(TableError):
            table.delete((9, 9))

    def test_wrong_key_arity(self):
        table = Table.over_store(self._schema(), KVStore())
        with pytest.raises(TableError):
            table.insert((1,), {"qty": 1, "ytd": 0})

    def test_unknown_column(self):
        table = Table.over_store(self._schema(), KVStore())
        table.insert((0, 0), {"qty": 1, "ytd": 0})
        with pytest.raises(TableError):
            table.get((0, 0), "price")

    def test_scan_yields_existing_rows(self):
        table = Table.over_store(self._schema(), KVStore())
        table.insert((0, 0), {"qty": 1, "ytd": 0})
        table.insert((0, 2), {"qty": 3, "ytd": 0})
        rows = dict(table.scan(iter([(0, k) for k in range(4)])))
        assert set(rows) == {(0, 0), (0, 2)}

    def test_table_through_transaction(self):
        """Tables compose with the engine: reads lock, aborts undo."""
        engine = LocalEngine()
        txn = engine.begin()
        table = Table(self._schema(), getobj=txn.read, setobj=txn.write)
        table.insert((5, 5), {"qty": 10, "ytd": 0})
        txn.abort()
        direct = Table.over_store(self._schema(), engine.store)
        assert not direct.exists((5, 5))
