"""Tests for the object store and undo journal."""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage.kvstore import KVStore
from repro.storage.wal import UndoLog


class TestKVStore:
    def test_default_zero(self):
        assert KVStore().get("anything") == 0

    def test_put_get(self):
        store = KVStore()
        store.put("x", 7)
        assert store.get("x") == 7

    def test_delete_resets_default(self):
        store = KVStore.from_mapping({"x": 3})
        store.delete("x")
        assert store.get("x") == 0
        assert "x" not in store

    def test_snapshot_restore(self):
        store = KVStore.from_mapping({"x": 1})
        snap = store.snapshot()
        store.put("x", 9)
        store.put("y", 2)
        store.restore(snap)
        assert store.get("x") == 1 and store.get("y") == 0

    def test_semantic_equality_ignores_explicit_zeros(self):
        assert KVStore.from_mapping({"x": 0}) == KVStore()
        assert KVStore.from_mapping({"x": 1}) == {"x": 1}
        assert KVStore.from_mapping({"x": 1}) != {"x": 2}

    def test_non_integer_rejected(self):
        import pytest

        with pytest.raises(TypeError):
            KVStore().put("x", "not an int")  # type: ignore[arg-type]


class TestUndoLog:
    def test_rollback_restores_values(self):
        store = KVStore.from_mapping({"x": 1, "y": 2})
        undo = UndoLog()
        undo.record(store, "x")
        store.put("x", 100)
        undo.record(store, "y")
        store.put("y", 200)
        undo.rollback(store)
        assert store == {"x": 1, "y": 2}

    def test_rollback_removes_created_objects(self):
        store = KVStore()
        undo = UndoLog()
        undo.record(store, "fresh")
        store.put("fresh", 5)
        undo.rollback(store)
        assert "fresh" not in store

    def test_only_first_image_kept(self):
        store = KVStore.from_mapping({"x": 1})
        undo = UndoLog()
        undo.record(store, "x")
        store.put("x", 2)
        undo.record(store, "x")  # second record must not overwrite
        store.put("x", 3)
        undo.rollback(store)
        assert store.get("x") == 1

    def test_clear_after_rollback(self):
        store = KVStore.from_mapping({"x": 1})
        undo = UndoLog()
        undo.record(store, "x")
        store.put("x", 5)
        undo.rollback(store)
        assert len(undo) == 0

    @given(
        st.dictionaries(st.sampled_from("abcde"), st.integers(-5, 5)),
        st.lists(
            st.tuples(st.sampled_from("abcde"), st.integers(-9, 9)),
            max_size=12,
        ),
    )
    def test_rollback_always_restores(self, initial, writes):
        """PROPERTY: record-before-write + rollback is the identity."""
        store = KVStore.from_mapping(initial)
        reference = store.snapshot()
        undo = UndoLog()
        for name, value in writes:
            undo.record(store, name)
            store.put(name, value)
        undo.rollback(store)
        assert store == KVStore.from_mapping(reference)
