"""Tests for the strict-2PL lock manager."""

import pytest

from repro.storage.locks import (
    DeadlockError,
    LockManager,
    LockMode,
    WouldBlock,
)


class TestGrants:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        assert lm.acquire(1, "x", LockMode.S)
        assert lm.acquire(2, "x", LockMode.S)

    def test_exclusive_blocks_shared(self):
        lm = LockManager()
        assert lm.acquire(1, "x", LockMode.X)
        assert not lm.acquire(2, "x", LockMode.S)

    def test_shared_blocks_exclusive(self):
        lm = LockManager()
        assert lm.acquire(1, "x", LockMode.S)
        assert not lm.acquire(2, "x", LockMode.X)

    def test_reentrant(self):
        lm = LockManager()
        assert lm.acquire(1, "x", LockMode.X)
        assert lm.acquire(1, "x", LockMode.X)
        assert lm.acquire(1, "x", LockMode.S)  # weaker re-request fine

    def test_upgrade_when_sole_holder(self):
        lm = LockManager()
        assert lm.acquire(1, "x", LockMode.S)
        assert lm.acquire(1, "x", LockMode.X)
        assert lm.holders("x")[1] is LockMode.X

    def test_upgrade_blocked_by_other_reader(self):
        lm = LockManager()
        assert lm.acquire(1, "x", LockMode.S)
        assert lm.acquire(2, "x", LockMode.S)
        assert not lm.acquire(1, "x", LockMode.X)

    def test_no_wait_raises(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.X)
        with pytest.raises(WouldBlock):
            lm.acquire(2, "x", LockMode.X, wait=False)

    def test_fifo_s_does_not_jump_queued_x(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.S)
        assert not lm.acquire(2, "x", LockMode.X)  # queued
        assert not lm.acquire(3, "x", LockMode.S)  # must not starve txn 2


class TestReleaseAndQueues:
    def test_release_grants_waiter(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.X)
        assert not lm.acquire(2, "x", LockMode.X)
        unblocked = lm.release_all(1)
        assert unblocked == [2]
        assert lm.holders("x") == {2: LockMode.X}

    def test_release_grants_multiple_readers(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.X)
        assert not lm.acquire(2, "x", LockMode.S)
        assert not lm.acquire(3, "x", LockMode.S)
        unblocked = lm.release_all(1)
        assert set(unblocked) == {2, 3}

    def test_release_while_waiting_cleans_queue(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.X)
        assert not lm.acquire(2, "x", LockMode.X)
        lm.release_all(2)  # abort the waiter
        assert lm.waiting(2) is None
        unblocked = lm.release_all(1)
        assert unblocked == []


class TestDeadlock:
    def test_two_cycle_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        assert not lm.acquire(1, "b", LockMode.X)  # 1 waits on 2
        with pytest.raises(DeadlockError) as err:
            lm.acquire(2, "a", LockMode.X)  # closes the cycle
        assert set(err.value.cycle) == {1, 2}

    def test_three_cycle_detected(self):
        lm = LockManager()
        for txn, obj in ((1, "a"), (2, "b"), (3, "c")):
            lm.acquire(txn, obj, LockMode.X)
        assert not lm.acquire(1, "b", LockMode.X)
        assert not lm.acquire(2, "c", LockMode.X)
        with pytest.raises(DeadlockError):
            lm.acquire(3, "a", LockMode.X)

    def test_victim_can_release_and_unblock(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        assert not lm.acquire(1, "b", LockMode.X)
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a", LockMode.X)
        # Victim (txn 2) aborts: txn 1 gets b.
        unblocked = lm.release_all(2)
        assert 1 in unblocked


class TestTimeouts:
    def test_waiter_expires(self):
        lm = LockManager(wait_timeout=10)
        lm.acquire(1, "x", LockMode.X)
        assert not lm.acquire(2, "x", LockMode.X)
        expired = lm.tick(10)
        assert len(expired) == 1 and expired[0].txn == 2
        assert lm.waiting(2) is None

    def test_not_expired_before_deadline(self):
        lm = LockManager(wait_timeout=10)
        lm.acquire(1, "x", LockMode.X)
        lm.acquire(2, "x", LockMode.X)
        assert lm.tick(9) == []

    def test_disabled_by_default(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.X)
        lm.acquire(2, "x", LockMode.X)
        assert lm.tick(10_000) == []
