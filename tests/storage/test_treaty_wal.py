"""Treaty WAL: durability, torn tails, replay edge cases.

Covers the recovery-critical corners the fault-tolerant runtime
depends on:

- round-trip encode/decode of a real installed local treaty;
- a torn final record (crash mid-append) is dropped on replay and is
  safe to drop *because* installs are logged before the ack;
- replay is idempotent (replaying twice converges);
- crash mid-install -- the install was logged but the ack never left
  the site -- still recovers the logged treaty;
- interior corruption (damage to an already-durable record) is loud.
"""

import pytest

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.terms import ObjT
from repro.protocol.faults import FaultPlan
from repro.storage.wal import (
    TreatyWAL,
    WALCorruption,
    decode_local_treaty,
    encode_local_treaty,
)
from repro.treaty.table import LocalTreaty
from repro.workloads.micro import MicroWorkload


def _clause(names_coeffs, op, bound):
    expr = LinearExpr.make({ObjT(n): c for n, c in names_coeffs})
    return LinearConstraint.make(expr, op, bound)


def _sample_treaty():
    return LocalTreaty(
        site=1,
        constraints=[
            _clause([("qty_delta[0]@s1", 1)], "<=", 12),
            _clause([("qty_delta[1]@s1", 2), ("qty_delta[2]@s1", -1)], "<=", 5),
            _clause([("qty_base[0]", 1)], "=", 40),
        ],
    )


class TestCodec:
    def test_round_trip(self):
        treaty = _sample_treaty()
        headroom = {treaty.constraints[0]: 7, treaty.constraints[1]: 3}
        record = encode_local_treaty(treaty, headroom)
        decoded, decoded_headroom = decode_local_treaty(record)
        assert decoded.site == treaty.site
        assert [c.pretty() for c in decoded.constraints] == [
            c.pretty() for c in treaty.constraints
        ]
        assert decoded_headroom == {
            decoded.constraints[0]: 7,
            decoded.constraints[1]: 3,
        }

    def test_round_trip_of_real_installed_treaty(self):
        workload = MicroWorkload(num_items=20, refill=30, num_sites=2)
        cluster = workload.build_homeostasis(strategy="equal-split")
        site = cluster.sites[0]
        record = encode_local_treaty(site.local_treaty, site.install_headroom)
        decoded, headroom = decode_local_treaty(record)
        assert {c.pretty() for c in decoded.constraints} == {
            c.pretty() for c in site.local_treaty.constraints
        }
        assert set(headroom.values()) == set(site.install_headroom.values())


class TestTornTail:
    def test_torn_final_record_dropped(self):
        wal = TreatyWAL()
        wal.append({"kind": "treaty_install", "round": 1, "n": 1})
        wal.append({"kind": "treaty_install", "round": 2, "n": 2})
        wal.tear(5)  # crash mid-append of record 2
        records = wal.records()
        assert [r["round"] for r in records] == [1]
        assert wal.last_treaty_install()["round"] == 1

    def test_fully_torn_log_is_empty(self):
        wal = TreatyWAL()
        wal.append({"kind": "treaty_install", "round": 1})
        wal.tear(wal.size_bytes())
        assert wal.records() == []
        assert wal.last_treaty_install() is None

    def test_truncate_torn_tail_repairs_in_place(self):
        wal = TreatyWAL()
        wal.append({"kind": "treaty_install", "round": 1})
        size_after_one = wal.size_bytes()
        wal.append({"kind": "treaty_install", "round": 2})
        wal.tear(3)
        removed = wal.truncate_torn_tail()
        assert removed > 0
        assert wal.size_bytes() == size_after_one
        # The repaired log appends and replays normally.
        wal.append({"kind": "treaty_install", "round": 3})
        assert [r["round"] for r in wal.records()] == [1, 3]

    def test_interior_corruption_is_loud(self):
        wal = TreatyWAL()
        wal.append({"kind": "treaty_install", "round": 1})
        wal.append({"kind": "treaty_install", "round": 2})
        wal._buf[2:6] = b"\x00\x00\x00\x00"  # damage a durable record
        with pytest.raises(WALCorruption):
            wal.records()


class TestReplay:
    def _cluster(self, **kwargs):
        workload = MicroWorkload(
            num_items=16, refill=12, num_sites=2, initial_qty="refill"
        )
        return workload, workload.build_homeostasis(
            strategy="equal-split", validate=True, **kwargs
        )

    def _drive_until_negotiation(self, workload, cluster, seed=0):
        import random

        rng = random.Random(seed)
        for _ in range(400):
            req = workload.next_request(rng, site=rng.randrange(2))
            if cluster.submit(req.tx_name, req.params).synced:
                return
        raise AssertionError("workload never negotiated")

    def test_replay_restores_last_install(self):
        workload, cluster = self._cluster()
        self._drive_until_negotiation(workload, cluster)
        site = cluster.sites[1]
        expected = {c.pretty() for c in site.local_treaty.constraints}
        expected_round = site.treaty_round
        expected_headroom = dict(site.install_headroom)

        site.local_treaty = None  # crash: volatile state gone
        site.install_headroom = {}
        assert site.replay_wal() == expected_round
        assert {c.pretty() for c in site.local_treaty.constraints} == expected
        # The recorded headroom snapshot survives (not recomputed from
        # the current state, where slack may already be consumed).
        assert sorted(site.install_headroom.values()) == sorted(
            expected_headroom.values()
        )

    def test_replay_is_idempotent(self):
        workload, cluster = self._cluster()
        self._drive_until_negotiation(workload, cluster)
        site = cluster.sites[0]
        appended_before = site.wal.appended
        first = site.replay_wal()
        state_first = {c.pretty() for c in site.local_treaty.constraints}
        second = site.replay_wal()
        assert first == second
        assert {c.pretty() for c in site.local_treaty.constraints} == state_first
        # Replays must not re-append to the log.
        assert site.wal.appended == appended_before

    def test_crash_mid_install_recovers_logged_treaty(self):
        """Install logged but ack never sent: the site crash-stops on
        the TreatyInstall message itself (the coordinator-ships-it
        path of a nondeterministic solver).  The coordinator observes
        a timeout -- but log-before-ack means recovery still has the
        treaty, so no peer's belief about this site is ever wrong."""
        from repro.protocol.messages import TreatyInstall
        from repro.protocol.transport import UnreachableError

        workload = MicroWorkload(
            num_items=16, refill=12, num_sites=2, initial_qty="refill"
        )
        cluster = workload.build_homeostasis(strategy="equal-split")
        site = cluster.sites[1]
        shipped = _sample_treaty()

        handled = cluster.transport._handled.get(1, 0)
        cluster.transport.faults = FaultPlan(crash_after={1: handled + 1})
        with pytest.raises(UnreachableError):
            cluster.transport.send(
                TreatyInstall(src=0, dst=1, round_number=99, treaty=shipped)
            )
        assert cluster.transport.is_down(1)

        # Restart: volatile state gone, WAL survives.
        site.local_treaty = None
        site.install_headroom = {}
        assert site.replay_wal() == 99
        assert [c.pretty() for c in site.local_treaty.constraints] == [
            c.pretty() for c in shipped.constraints
        ]
