"""Smoke tests for the human-facing rendering paths.

The examples and the paper-comparison tables rely on ``pretty()``
renderings across the stack; these tests pin their basic shape so a
refactor cannot silently break the demo output.
"""

from repro.analysis.joint import build_joint_table
from repro.analysis.symbolic import build_symbolic_table
from repro.lang.parser import parse_transaction
from repro.logic.formula import Cmp
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.linearize import linearize_for_treaty
from repro.logic.terms import Add, Const, IndexedObjT, Mul, Neg, ObjT, ParamT, TempT
from repro.treaty.config import equal_split_configuration
from repro.treaty.table import TreatyTable
from repro.treaty.templates import ConfigVar, build_templates

T1_SRC = """
transaction T1() {
  xh := read(x); yh := read(y);
  if xh + yh < 10 then { write(x = xh + 1) } else { write(x = xh - 1) }
}
"""


class TestTermFormulaPretty:
    def test_terms(self):
        term = Add(Mul(Const(3), ObjT("x")), Neg(TempT("t")))
        assert term.pretty() == "((3 * x) + (-t))"

    def test_param_and_indexed(self):
        term = IndexedObjT("qty", (ParamT("item"),))
        assert term.pretty() == "qty[@item]"

    def test_formula(self):
        f = Cmp("<=", ObjT("x"), Const(5))
        assert f.pretty() == "x <= 5"

    def test_linear_constraint(self):
        con = LinearConstraint.make(
            LinearExpr.make({ObjT("x"): -1, ObjT("y"): -1}), "<=", -20
        )
        text = con.pretty()
        assert "<= -20" in text and "x" in text and "y" in text


class TestTablePretty:
    def test_symbolic_table_header(self):
        table = build_symbolic_table(parse_transaction(T1_SRC))
        text = table.pretty()
        assert text.startswith("symbolic table for T1 (2 rows)")
        assert "->" in text

    def test_joint_table_header(self):
        t2 = parse_transaction(T1_SRC.replace("T1", "T2").replace("x =", "y ="))
        joint = build_joint_table(
            [build_symbolic_table(parse_transaction(T1_SRC)), build_symbolic_table(t2)]
        )
        assert "joint symbolic table for {T1, T2}" in joint.pretty()

    def test_treaty_table_pretty(self):
        db = {"x": 10, "y": 13}
        getobj = lambda n: db.get(n, 0)  # noqa: E731
        guard = Cmp(">=", Add(ObjT("x"), ObjT("y")), Const(20))
        lin = linearize_for_treaty(guard, getobj)
        templates = build_templates(lin, lambda n: 1 if n == "x" else 2, [1, 2])
        config = equal_split_configuration(templates, getobj)
        table = TreatyTable.assemble(lin, templates, config, round_number=3)
        text = table.pretty()
        assert "round 3" in text
        assert "global:" in text
        assert "site 1:" in text and "site 2:" in text

    def test_config_var_repr_stable(self):
        assert repr(ConfigVar(site=2, clause=7)) == "c[s2,cl7]"


class TestTransactionPretty:
    def test_transaction_renders_header_and_body(self):
        tx = parse_transaction(T1_SRC)
        text = tx.pretty()
        assert text.startswith("transaction T1()")
        assert "if" in text and "write(x" in text

    def test_distinct_clause_rendered(self):
        tx = parse_transaction(
            "transaction T(a, b) distinct(a, b) { write(q(@a) = read(q(@b))) }"
        )
        assert "distinct(a, b)" in tx.pretty()
