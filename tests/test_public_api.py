"""The curated facade: ``repro``'s public surface and its consumers.

Guards the API-redesign satellites: ``repro.__all__`` is explicit and
every name in it resolves; the examples are written against the
facade only (zero deep-module imports); and the console entry point
is wired up.
"""

import ast
from pathlib import Path

import repro

REPO = Path(__file__).resolve().parents[1]


class TestFacade:
    def test_all_exports_resolve(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert not missing

    def test_core_surface_present(self):
        for name in (
            "ClusterSpec",
            "NegotiationSpec",
            "build_cluster",
            "Outcome",
            "MicroWorkload",
            "GeoMicroWorkload",
            "TpccWorkload",
            "run_simulation",
            "run_contention",
            "analyze",
            "parse_transaction",
        ):
            assert name in repro.__all__, name

    def test_dunder_all_is_sorted_within_sections(self):
        # every export is importable via `from repro import <name>`
        namespace = {}
        exec(
            f"from repro import {', '.join(n for n in repro.__all__ if n != '__version__')}",
            namespace,
        )

    def test_build_cluster_round_trip(self):
        workload = repro.MicroWorkload(num_items=4, refill=4, num_sites=2)
        cluster = repro.build_cluster(
            workload.cluster_spec(strategy="equal-split")
        )
        result = cluster.submit("Buy@s0", {"item": 1})
        assert result.status is repro.Outcome.COMMITTED

    def test_negotiation_spec_threads_through_build_cluster(self):
        workload = repro.MicroWorkload(num_items=4, refill=4, num_sites=3)
        spec = workload.cluster_spec(
            strategy="equal-split",
            negotiation=repro.NegotiationSpec(policy="credit"),
        )
        cluster = repro.build_cluster(spec)
        assert cluster.submit("Buy@s0", {"item": 1}).status is (
            repro.Outcome.COMMITTED
        )
        stats = cluster.fairness_stats()
        assert stats["policy"] == "credit"
        assert stats["elections"] == 0  # sequential driver: unopposed


class TestExamplesUseTheFacade:
    def _imports_of(self, path: Path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                yield from (alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                yield node.module

    def test_zero_deep_module_imports(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert examples, "examples/ directory missing"
        offenders = []
        for path in examples:
            for module in self._imports_of(path):
                if module.startswith("repro."):
                    offenders.append(f"{path.name}: {module}")
        assert not offenders, offenders


class TestEntryPoint:
    def test_repro_serve_script_declared(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        assert 'repro-serve = "repro.runtime.serve:main"' in pyproject

    def test_serve_main_importable(self):
        from repro.runtime.serve import main

        assert callable(main)
