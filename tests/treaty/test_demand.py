"""Properties of the demand-weighted configuration (adaptive
reallocation).

The rebalance invariants the adaptive subsystem rests on:

- :func:`repro.treaty.optimize.demand_split` partitions the slack
  **exactly** for arbitrary demand vectors and floors -- every unit
  allocated, none invented, no site starved below the floor;
- :func:`repro.treaty.optimize.demand_configuration` therefore
  preserves the H1 configuration-sum identity with equality (the
  locals imply the global treaty with zero stranded budget) and H2
  (every local treaty is feasible on the current database), whatever
  the observed rates say;
- the online :class:`repro.protocol.homeostasis.DemandEstimator`
  favors recent writers and decays stale history.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.linearize import LinearizedTreaty
from repro.logic.terms import ObjT
from repro.protocol.homeostasis import DemandEstimator
from repro.treaty.config import check_h1_algebraic, check_h2
from repro.treaty.optimize import demand_configuration, demand_split
from repro.treaty.templates import build_templates

rates = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestDemandSplit:
    @given(
        slack=st.integers(min_value=0, max_value=100_000),
        weights=st.lists(rates, min_size=1, max_size=12),
        floor=st.integers(min_value=0, max_value=64),
    )
    def test_split_is_exact_and_floored(self, slack, weights, floor):
        shares = demand_split(slack, weights, floor)
        assert sum(shares) == slack, "slack must be partitioned exactly"
        effective_floor = min(floor, slack // len(weights))
        for share in shares:
            assert share >= effective_floor >= 0

    @given(slack=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=1, max_value=10))
    def test_zero_demand_degrades_to_equal_split(self, slack, count):
        shares = demand_split(slack, [0.0] * count, floor=0)
        assert sum(shares) == slack
        assert max(shares) - min(shares) <= 1

    def test_proportionality_dominates_given_slack(self):
        # Floors first (10 each), the 80-unit remainder split 3:1.
        shares = demand_split(100, [3.0, 1.0], floor=10)
        assert shares == [70, 30]

    def test_deterministic_tiebreak(self):
        assert demand_split(5, [1.0, 1.0, 1.0], 0) == demand_split(
            5, [1.0, 1.0, 1.0], 0
        )


def _templates(db, sites, locate):
    """One <=-clause (sum of everything <= 60) and one equality pin."""
    total = LinearExpr.make({ObjT(name): 1 for name in db})
    constraints = [
        LinearConstraint.make(total, "<=", 60),
        LinearConstraint.make(LinearExpr.variable(ObjT("p")), "=", db["p"]),
    ]
    lin = LinearizedTreaty(constraints=constraints, pinned={ObjT("p")})
    return build_templates(lin, locate, sites)


class TestDemandConfiguration:
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=15), min_size=3, max_size=3
        ),
        demand=st.lists(rates, min_size=4, max_size=4),
        floor=st.integers(min_value=0, max_value=8),
    )
    def test_h1_exact_and_h2_for_arbitrary_demand(self, values, demand, floor):
        db = {"a": values[0], "b": values[1], "c": values[2], "p": 7}
        sites = (0, 1, 2, 3)
        locate = lambda name: {"a": 0, "b": 1, "c": 2, "p": 3}[name]  # noqa: E731
        templates = _templates(db, sites, locate)
        getobj = db.__getitem__
        rate_of = dict(zip("abcp", demand))
        config = demand_configuration(
            templates, getobj, lambda name: rate_of[name], floor=floor
        )
        assert check_h1_algebraic(templates, config)
        assert check_h2(templates, config, getobj)
        # The <=-clause's configuration sums to (K-1)*n with *equality*:
        # the whole slack is allocated, none stranded.
        clause = templates.clauses[0]
        total = sum(config.value(clause.config_var(s)) for s in clause.sites)
        assert total == (len(sites) - 1) * clause.bound

    def test_hot_site_receives_the_larger_share(self):
        db = {"a": 0, "b": 0, "c": 0, "p": 7}
        sites = (0, 1, 2, 3)
        locate = lambda name: {"a": 0, "b": 1, "c": 2, "p": 3}[name]  # noqa: E731
        templates = _templates(db, sites, locate)
        config = demand_configuration(
            templates,
            db.__getitem__,
            {"a": 100.0, "b": 1.0, "c": 1.0, "p": 0.0}.get,
        )
        clause = templates.clauses[0]
        # Headroom of site k is bound - local_sum - c_k; local sums are
        # zero here, so compare the configs directly: the hot site's
        # c_k is the smallest (largest headroom).
        configs = {s: config.value(clause.config_var(s)) for s in sites}
        assert configs[0] == min(configs.values())
        assert configs[0] < configs[1]


class TestDemandEstimator:
    def test_rates_accumulate_and_decay(self):
        est = DemandEstimator(halflife=4)
        for _ in range(8):
            est.observe({"hot"})
        assert est.rate("hot") > est.rate("cold") == 0.0
        peak = est.rate("hot")
        for _ in range(16):
            est.observe({"other"})
        assert est.rate("hot") < peak / 8  # 16 steps = 4 halflives

    def test_recent_writer_outranks_stale_one(self):
        est = DemandEstimator(halflife=8)
        for _ in range(20):
            est.observe({"old"})
        for _ in range(40):
            est.observe({"new"})
        assert est.rate("new") > est.rate("old")
