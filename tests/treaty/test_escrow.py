"""Escrow fast-path tests: lowering, counter semantics, batching, and
the differential property against the compiled oracle.

The escrow account (:mod:`repro.treaty.escrow`) replaces the compiled
per-commit treaty check with decrement-only headroom counters plus a
batched commit window.  Its contract is *observational equivalence*
with :meth:`LocalTreaty.violations_after_writes` -- same accept/reject
verdict and same violated-object set on every commit -- which the
Hypothesis test here checks over random ``<=``/``=`` treaties, random
write sequences (zero deltas and exact-zero headroom included), and
mid-sequence treaty reinstalls, at window sizes from settle-everything
to settle-never.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.compile import PIN_DRAIN, escrow_counts, lower_to_escrow
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.terms import ObjT, ParamT
from repro.protocol.site import clause_slack
from repro.treaty.escrow import DEFAULT_WINDOW, EscrowAccount
from repro.treaty.table import LocalTreaty

OBJECTS = ("x", "y", "z")


def con(coeffs: dict[str, int], op: str, bound: int) -> LinearConstraint:
    return LinearConstraint.make(
        LinearExpr.make({ObjT(n): c for n, c in coeffs.items()}), op, bound
    )


def account_for(
    constraints, state: dict[str, int], window: int = DEFAULT_WINDOW
) -> EscrowAccount:
    program = lower_to_escrow(tuple(constraints))
    assert program is not None
    getobj = lambda n: state.get(n, 0)  # noqa: E731
    return EscrowAccount(
        program,
        [clause_slack(row, getobj) for row in program.rows],
        window=window,
    )


class TestLowering:
    def test_le_clause_is_one_budget_row(self):
        program = lower_to_escrow((con({"x": 2, "y": -1}, "<=", 7),))
        assert len(program.rows) == 1
        assert program.budget_rows == (0,)
        assert program.bounds == (7,)
        assert program.max_coeff == {"x": 2, "y": 1}

    def test_equality_pin_lowers_to_opposing_pair_outside_budget(self):
        program = lower_to_escrow((con({"x": 1}, "=", 5),))
        assert len(program.rows) == 2
        assert program.budget_rows == ()
        assert program.row_source == (0, 0)
        assert sorted(program.bounds) == [-5, 5]
        assert program.max_coeff == {"x": PIN_DRAIN}

    def test_strict_and_reversed_ops_normalize_to_eligible_forms(self):
        # LinearConstraint.make normalizes <, >, >= into <= over the
        # integers, so every comparison op lowers.
        for op in ("<", "<=", ">", ">="):
            assert lower_to_escrow((con({"x": 1}, op, 5),)) is not None

    def test_non_object_variable_is_ineligible(self):
        bad = LinearConstraint.make(LinearExpr.variable(ParamT("p")), "<=", 3)
        assert lower_to_escrow((bad,)) is None
        assert lower_to_escrow((con({"x": 1}, "<=", 5), bad)) is None

    def test_coefficient_less_clause_lowers_to_no_row(self):
        program = lower_to_escrow(
            (con({}, "<=", 3), con({"x": 1}, "<=", 5))
        )
        assert len(program.rows) == 1
        assert program.row_source == (1,)

    def test_lowering_is_memoized(self):
        cons = (con({"x": 1, "z": 3}, "<=", 11),)
        first = lower_to_escrow(cons)
        before = escrow_counts()
        assert lower_to_escrow(tuple(cons)) is first
        after = escrow_counts()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]


class TestAccount:
    def test_exact_zero_headroom_is_not_a_violation(self):
        account = account_for([con({"x": 1}, "<=", 5)], {"x": 0}, window=1)
        assert account.commit({"x": 5}) is None  # lands exactly on the bound
        assert list(account.headroom_map().values()) == [0]
        assert account.commit({"x": 1}) == [0]

    def test_rejection_reverts_state(self):
        account = account_for([con({"x": 1}, "<=", 5)], {"x": 0}, window=1)
        assert account.commit({"x": 9}) == [0]
        # The rejected deltas were backed out: headroom intact, and a
        # commit that fits is still admitted.
        assert list(account.headroom_map().values()) == [5]
        assert account.commit({"x": 5}) is None

    def test_refill_restores_headroom(self):
        account = account_for([con({"x": 1}, "<=", 5)], {"x": 0}, window=1)
        assert account.commit({"x": 5}) is None
        assert account.commit({"x": 1}) == [0]
        assert account.commit({"x": -3}) is None
        assert account.commit({"x": 3}) is None

    def test_multi_object_clause_couples_the_budget(self):
        # One clause over two objects: each object alone fits in the
        # clause's slack, together they overrun it.  A per-object
        # budget would wrongly admit the second commit.
        account = account_for([con({"x": 1, "y": 1}, "<=", 10)], {})
        assert account.commit({"x": 6}) is None
        assert account.commit({"y": 6}) == [0]
        assert account.commit({"y": 4}) is None

    def test_pin_violates_in_both_directions(self):
        state = {"x": 5}
        up = account_for([con({"x": 1}, "=", 5)], state)
        assert up.commit({"x": 1}) is not None
        assert up.violated_objects(up.commit({"x": 1})) == frozenset({"x"})
        down = account_for([con({"x": 1}, "=", 5)], state)
        assert down.commit({"x": -1}) is not None
        # A write that leaves the pinned value unchanged is fine.
        assert down.commit({"x": 0}) is None

    def test_pin_only_treaty_never_fast_admits_a_pin_break(self):
        # Regression: with no budget rows the window budget must not
        # default to a value above PIN_DRAIN, or small pin-breaking
        # deltas would be admitted without ever settling a counter.
        account = account_for([con({"x": 1}, "=", 5)], {"x": 5})
        for delta in (1, 3, 8):
            assert account.commit({"x": delta}) is not None, delta
        assert account.stats()["violations"] == 3

    def test_budget_excludes_pin_rows(self):
        # A zero-slack pin next to a roomy <=-clause must not disable
        # the fast path for commits that never touch the pin.
        account = account_for(
            [con({"x": 1}, "<=", 100), con({"y": 1}, "=", 5)],
            {"x": 0, "y": 5},
        )
        for _ in range(20):
            assert account.commit({"x": 1}) is None
        stats = account.stats()
        assert stats["fast_commits"] == 20
        assert stats["settlements"] == 0

    def test_window_cap_forces_settlement(self):
        account = account_for([con({"x": 1}, "<=", 1000)], {"x": 0}, window=4)
        for _ in range(5):
            assert account.commit({"x": 1}) is None
        stats = account.stats()
        assert stats["settlements"] == 1
        assert stats["fast_commits"] == 4
        assert stats["settled_commits"] == 1

    def test_resync_discards_pending_window(self):
        account = account_for([con({"x": 1}, "<=", 10)], {"x": 0})
        assert account.commit({"x": 4}) is None
        # A non-transactional write moved the store; resync must
        # recompute from it and drop the pending (already durable)
        # deltas rather than double-charging them.
        store = {"x": 7}
        account.resync(lambda n: store.get(n, 0), epoch=3)
        assert list(account.headroom_map().values()) == [3]
        assert account.synced_epoch == 3
        assert account.commit({"x": 4}) == [0]
        assert account.commit({"x": 3}) is None

    def test_negative_pin_row_forces_exact_path(self):
        # Off the H2 happy path: if a resync lands on a state that
        # already breaks a pin, every commit must be judged on exact
        # counters so the verdict matches the compiled oracle -- even
        # a zero-delta write to the broken pin's object.
        account = account_for([con({"x": 1}, "=", 5)], {"x": 5})
        store = {"x": 6}
        account.resync(lambda n: store.get(n, 0))
        assert account.commit({"x": 0}) is not None


def _scripted_deltas():
    return [
        {"x": 3},
        {"x": 3, "y": 2},
        {"y": -1},
        {"x": 5},  # overruns
        {"x": -2},
        {"x": 1, "y": 1},
        {"x": 100},  # violates
        {"y": 3},
    ]


class TestBatchingEquivalence:
    def test_batched_and_per_commit_verdicts_agree(self):
        cons = [con({"x": 1, "y": 1}, "<=", 12), con({"x": 1}, "<=", 9)]
        state = {"x": 0, "y": 0}
        batched = account_for(cons, state, window=DEFAULT_WINDOW)
        # window=0 settles on every commit: the pure per-commit mode.
        per_commit = account_for(cons, state, window=0)
        for deltas in _scripted_deltas():
            assert batched.commit(dict(deltas)) == per_commit.commit(dict(deltas))
        assert batched.headroom_map() == per_commit.headroom_map()
        # The batched account actually used the fast path.
        assert batched.stats()["fast_commits"] > 0
        assert per_commit.stats()["fast_commits"] == 0


# -- differential property test against the compiled oracle -------------------

clauses = st.builds(
    con,
    st.dictionaries(
        st.sampled_from(OBJECTS), st.integers(-4, 4), min_size=1, max_size=3
    ),
    st.sampled_from(("<", "<=", "=", ">", ">=")),
    st.integers(-15, 15),
)
treaties = st.lists(clauses, min_size=1, max_size=4)
states = st.fixed_dictionaries({n: st.integers(-10, 10) for n in OBJECTS})
writes = st.dictionaries(
    st.sampled_from(OBJECTS), st.integers(-10, 10), min_size=1, max_size=3
)
steps = st.lists(
    st.one_of(
        writes.map(lambda w: ("write", w)),
        treaties.map(lambda t: ("install", t)),
    ),
    min_size=1,
    max_size=25,
)


class TestDifferential:
    @settings(max_examples=250, deadline=None)
    @given(
        cons=treaties,
        state0=states,
        script=steps,
        window=st.sampled_from((1, 2, DEFAULT_WINDOW)),
    )
    def test_escrow_matches_compiled_oracle(self, cons, state0, script, window):
        """Accept/reject verdict and violated-object set must match
        ``violations_after_writes`` on every commit, for arbitrary
        (including treaty-breaking) pre-states, zero-delta writes, and
        reinstalls mid-sequence (the rebalance path)."""
        state = dict(state0)
        treaty = LocalTreaty(site=0, constraints=list(cons))
        account = account_for(cons, state, window=window)
        for kind, payload in script:
            if kind == "install":
                treaty = LocalTreaty(site=0, constraints=list(payload))
                account = account_for(payload, state, window=window)
                continue
            written = set(payload)
            post = dict(state)
            post.update(payload)
            oracle = treaty.violations_after_writes(
                lambda n: post.get(n, 0), written
            )
            deltas = {n: post[n] - state.get(n, 0) for n in written}
            verdict = account.commit(deltas)
            if oracle:
                assert verdict is not None, (deltas, state)
                assert account.violated_objects(verdict) == oracle
            else:
                assert verdict is None, (deltas, state, verdict)
                state = post
        # Settled counters end exactly at the final state's slack.
        account.settle()
        getobj = lambda n: state.get(n, 0)  # noqa: E731
        assert account.headroom == [
            clause_slack(row, getobj) for row in account.program.rows
        ]


class TestSiteIntegration:
    def test_ineligible_treaty_keeps_compiled_path(self):
        from repro.protocol.site import SiteServer

        server = SiteServer(site_id=0, locate=lambda name: 0)
        bad = LinearConstraint.make(LinearExpr.variable(ParamT("p")), "<=", 3)
        server.install_treaty(LocalTreaty(site=0, constraints=[bad]))
        assert server.escrow is None
        assert server.escrow_ineligible_installs == 1

    def test_install_builds_account_from_install_headroom(self):
        from repro.protocol.site import SiteServer

        server = SiteServer(site_id=0, locate=lambda name: 0)
        server.engine.poke("x", 4)
        server.install_treaty(LocalTreaty(site=0, constraints=[con({"x": 1}, "<=", 9)]))
        assert server.escrow is not None
        assert list(server.escrow.headroom_map().values()) == [5]
        assert server.escrow_installs == 1


def test_validate_mode_raises_on_seeded_divergence():
    """The differential guardrail must actually trip: corrupt a live
    escrow counter behind the account's back and the next divergent
    commit verdict raises instead of silently mis-enforcing."""
    import random

    from repro.treaty.escrow import EscrowDivergence
    from repro.workloads.micro import MicroWorkload

    workload = MicroWorkload(num_items=6, refill=12, num_sites=2, initial_qty="refill")
    cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
    server = cluster.sites[0]
    assert server.escrow is not None
    # Steal every counter's headroom: the escrow path now rejects
    # commits the compiled oracle accepts.
    server.escrow.settle()
    server.escrow.headroom[:] = [-1] * len(server.escrow.headroom)
    server.escrow._install_hot_path()
    rng = random.Random(0)
    with pytest.raises(EscrowDivergence):
        for _ in range(50):
            req = workload.next_request(rng, site=0)
            cluster.submit(req.tx_name, req.params)
