"""Incremental treaty generation: the dirty-set cache and value memo.

The generator's contract (engineering optimization over Section 4):

- an instance whose objects are disjoint from the round's dirty set
  keeps its cached piece verbatim -- ``instances_recomputed`` must
  stay flat;
- pieces are memoized by the *values* of the objects they depend on,
  so refill cycles that revisit a stock level reuse the piece without
  recomputation.
"""

import random

from repro.workloads.micro import MicroWorkload


def _generator_env(num_items=4, refill=10, num_sites=2):
    workload = MicroWorkload(
        num_items=num_items, refill=refill, num_sites=num_sites
    )
    cluster = workload.build_homeostasis(strategy="equal-split")
    ref = cluster.sites[0]
    return workload, cluster, ref


class TestDirtyScoping:
    def test_disjoint_dirty_recomputes_nothing(self):
        workload, cluster, ref = _generator_env()
        gen = cluster.generator
        baseline = gen.instances_recomputed
        assert baseline > 0  # the bootstrap round computed every piece
        # A dirty set not intersecting any instance's objects.
        gen.generate(
            ref.engine.peek, ref.engine.store.data, 2, dirty={"unrelated[0]"}
        )
        assert gen.instances_recomputed == baseline

    def test_dirty_recomputes_only_touching_instances(self):
        workload, cluster, ref = _generator_env(num_items=5)
        gen = cluster.generator
        baseline = gen.instances_recomputed
        # Touch item 2's stock: exactly the per-site Buy instances of
        # item 2 depend on it (one per site variant).
        ref.engine.poke("qty[2]", 7)
        gen.generate(
            ref.engine.peek, ref.engine.store.data, 2, dirty={"qty[2]"}
        )
        assert gen.instances_recomputed == baseline + workload.num_sites

    def test_instance_object_index(self):
        workload, cluster, _ = _generator_env(num_items=3)
        gen = cluster.generator
        touched = gen.instances_touching({"qty[1]"})
        assert len(touched) == workload.num_sites
        # The affected-object closure covers the item's deltas too.
        objs = gen.objects_touching({"qty[1]"})
        assert "qty__d0[1]" in objs and "qty__d1[1]" in objs
        assert not any(name.endswith("[0]") for name in objs)
        # And the site closure is every owner in the replication group.
        assert gen.sites_touching({"qty[1]"}) == set(workload.sites)


class TestValueMemo:
    def test_refill_cycle_reuses_memoized_pieces(self):
        """Coming back to a previously seen stock level must hit the
        value-keyed memo instead of recomputing the piece."""
        workload, cluster, ref = _generator_env(num_items=2, refill=9)
        gen = cluster.generator
        original = ref.engine.peek("qty[0]")
        baseline = gen.instances_recomputed

        ref.engine.poke("qty[0]", original - 3)
        gen.generate(ref.engine.peek, ref.engine.store.data, 2, dirty={"qty[0]"})
        after_change = gen.instances_recomputed
        assert after_change > baseline  # new values: real recomputation

        ref.engine.poke("qty[0]", original)  # the refill restores them
        gen.generate(ref.engine.peek, ref.engine.store.data, 3, dirty={"qty[0]"})
        assert gen.instances_recomputed == after_change  # memo hit

        ref.engine.poke("qty[0]", original - 3)  # and back again
        gen.generate(ref.engine.peek, ref.engine.store.data, 4, dirty={"qty[0]"})
        assert gen.instances_recomputed == after_change  # memo hit

    def test_memo_reuse_under_protocol_run(self):
        """End to end: a long run over few items revisits stock levels
        constantly, so recomputations grow much slower than rounds."""
        workload = MicroWorkload(num_items=2, refill=6, num_sites=2)
        cluster = workload.build_homeostasis(strategy="equal-split")
        rng = random.Random(0)
        for _ in range(300):
            req = workload.next_request(rng)
            cluster.submit(req.tx_name, req.params)
        gen = cluster.generator
        rounds = cluster.stats.rounds
        assert rounds > 20
        # Each negotiation dirties one item, i.e. 2 instances (plus 4
        # at bootstrap); without the value memo recomputations would
        # sit exactly at that bound, and without dirty scoping at
        # 4 per round.  The memo must beat the no-memo bound.
        no_memo_bound = 2 * (rounds - 1) + 4
        assert gen.instances_recomputed < no_memo_bound
        assert gen.instances_recomputed < 4 * rounds / 2
