"""Tests for the treaty table and the indexed fast-path check.

``holds_after_writes`` is a soundness-critical optimization: the
per-commit treaty check evaluates only clauses touching written
objects.  Its contract -- equivalence to the full check whenever the
treaty held before the writes -- is property-tested here.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.terms import ObjT
from repro.treaty.table import LocalTreaty

OBJECTS = ["a", "b", "c", "d"]


def _random_treaty(rng: random.Random, db: dict[str, int]) -> LocalTreaty:
    """A treaty of random <=-clauses that hold on db."""
    constraints = []
    for _ in range(rng.randint(1, 5)):
        names = rng.sample(OBJECTS, rng.randint(1, 3))
        coeffs = {ObjT(n): rng.choice((-2, -1, 1, 2)) for n in names}
        value = sum(c * db.get(v.name, 0) for v, c in coeffs.items())
        slack = rng.randint(0, 6)
        constraints.append(
            LinearConstraint.make(LinearExpr.make(coeffs), "<=", value + slack)
        )
    return LocalTreaty(site=0, constraints=constraints)


class TestLocalTreaty:
    def test_holds_basic(self):
        treaty = LocalTreaty(
            site=0,
            constraints=[
                LinearConstraint.make(LinearExpr.variable(ObjT("a")), "<=", 5)
            ],
        )
        assert treaty.holds(lambda n: 5)
        assert not treaty.holds(lambda n: 6)

    def test_violated_clauses_reported(self):
        treaty = LocalTreaty(
            site=0,
            constraints=[
                LinearConstraint.make(LinearExpr.variable(ObjT("a")), "<=", 5),
                LinearConstraint.make(LinearExpr.variable(ObjT("b")), "<=", 99),
            ],
        )
        violated = treaty.violated_clauses(lambda n: {"a": 9, "b": 0}.get(n, 0))
        assert len(violated) == 1

    def test_violated_clauses_reuses_cached_per_clause_checks(self):
        """Repeated calls must not recompile: the per-clause closures
        are built once and shared with the per-object index."""
        import repro.logic.compile as compile_mod

        treaty = LocalTreaty(
            site=0,
            constraints=[
                LinearConstraint.make(LinearExpr.variable(ObjT("a")), "<=", 5),
                LinearConstraint.make(LinearExpr.variable(ObjT("b")), "<=", 9),
            ],
        )
        treaty.violated_clauses(lambda n: 0)
        cache = treaty._clause_checks_cache
        assert cache is not None
        before = compile_mod.compiled_counts()
        for _ in range(5):
            treaty.violated_clauses(lambda n: 0)
        assert treaty._clause_checks_cache is cache
        # No new clause entered the compiler: every call served from
        # the treaty-local cache, not even a memo-table hit.
        assert compile_mod.compiled_counts() == before
        # The per-object index shares the same compiled closures.
        checks = {id(con): chk for con, chk in cache}
        for entries in treaty._object_index().values():
            for con, chk in entries:
                assert checks[id(con)] is chk

    def test_objects_enumeration(self):
        treaty = LocalTreaty(
            site=0,
            constraints=[
                LinearConstraint.make(
                    LinearExpr.make({ObjT("a"): 1, ObjT("b"): -1}), "<=", 3
                )
            ],
        )
        assert treaty.objects() == {"a", "b"}

    def test_fast_path_skips_untouched_clauses(self):
        """Writing an object outside the treaty cannot violate it."""
        treaty = LocalTreaty(
            site=0,
            constraints=[
                LinearConstraint.make(LinearExpr.variable(ObjT("a")), "<=", 0)
            ],
        )
        # Full check would fail on this state; the fast path correctly
        # trusts the induction hypothesis for clauses not written.
        assert treaty.holds_after_writes(lambda n: 99, written={"z"})

    @settings(max_examples=80)
    @given(seed=st.integers(0, 100_000))
    def test_fast_path_equivalence_property(self, seed):
        """PROPERTY: starting from a state where the treaty holds, after
        any set of writes the fast path agrees with the full check."""
        rng = random.Random(seed)
        db = {n: rng.randint(-5, 5) for n in OBJECTS}
        treaty = _random_treaty(rng, db)
        assert treaty.holds(lambda n: db.get(n, 0))  # precondition

        written = set(rng.sample(OBJECTS, rng.randint(0, len(OBJECTS))))
        new_db = dict(db)
        for name in written:
            new_db[name] = db[name] + rng.randint(-4, 4)

        lookup = lambda n: new_db.get(n, 0)  # noqa: E731
        assert treaty.holds_after_writes(lookup, written) == treaty.holds(lookup)
