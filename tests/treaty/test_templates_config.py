"""Tests for treaty templates and configurations (Section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.joint import build_joint_table
from repro.analysis.symbolic import build_symbolic_table
from repro.lang.parser import parse_transaction
from repro.logic.linearize import linearize_for_treaty
from repro.treaty.config import (
    check_h1_algebraic,
    check_h1_semantic,
    check_h2,
    default_configuration,
    equal_split_configuration,
    local_treaties,
)
from repro.treaty.templates import ConfigVar, build_templates

T1_SRC = """
transaction T1() {
  xh := read(x); yh := read(y);
  if xh + yh < 10 then { write(x = xh + 1) } else { write(x = xh - 1) }
}
"""
T2_SRC = """
transaction T2() {
  xh := read(x); yh := read(y);
  if xh + yh < 20 then { write(y = yh + 1) } else { write(y = yh - 1) }
}
"""


def _running_example(db=None):
    """The Section 4 running example: x on site 1, y on site 2."""
    db = db or {"x": 10, "y": 13}
    getobj = lambda n: db.get(n, 0)  # noqa: E731
    joint = build_joint_table(
        [build_symbolic_table(parse_transaction(s)) for s in (T1_SRC, T2_SRC)]
    )
    psi = joint.lookup(getobj).guard
    lin = linearize_for_treaty(psi, getobj)
    locate = lambda name: 1 if name == "x" else 2  # noqa: E731
    templates = build_templates(lin, locate, [1, 2])
    return templates, getobj, db


class TestTemplates:
    def test_one_clause_two_sites(self):
        templates, _, _ = _running_example()
        assert len(templates.clauses) == 1
        clause = templates.clauses[0]
        assert set(clause.site_exprs) == {1, 2}

    def test_hard_constraint_is_h1_budget(self):
        """For x + y >= 20 split over 2 sites, H1 is c1 + c2 >= (K-1)n,
        i.e. in the paper's orientation cx + cy <= 20."""
        templates, _, _ = _running_example()
        hard = templates.clauses[0].hard_constraint()
        c1 = ConfigVar(site=1, clause=0)
        c2 = ConfigVar(site=2, clause=0)
        # H1 here: c1 + c2 >= (K-1)*n = -20.  In the paper's positive
        # orientation (cx = -c1, cy = -c2) that is cx + cy <= 20.
        assert hard.satisfied_by({c1: -10, c2: -10})  # cx+cy = 20, tight
        assert hard.satisfied_by({c1: -9, c2: -10})  # cx+cy = 19 < 20
        assert not hard.satisfied_by({c1: -11, c2: -10})  # cx+cy = 21 > 20

    def test_local_sum_on(self):
        templates, getobj, _ = _running_example()
        clause = templates.clauses[0]
        assert clause.local_sum_on(1, getobj) == -10  # -x at x=10
        assert clause.local_sum_on(2, getobj) == -13

    def test_global_holds_on(self):
        templates, getobj, _ = _running_example()
        assert templates.clauses[0].global_holds_on(getobj)


class TestConfigurations:
    @pytest.mark.parametrize("maker", [default_configuration, equal_split_configuration])
    def test_h1_and_h2(self, maker):
        templates, getobj, _ = _running_example()
        config = maker(templates, getobj)
        assert check_h1_algebraic(templates, config)
        assert check_h1_semantic(templates, config)
        assert check_h2(templates, config, getobj)

    def test_default_freezes_state(self):
        """Theorem 4.3's configuration admits no local movement: any
        increase of a local sum violates."""
        templates, getobj, db = _running_example()
        config = default_configuration(templates, getobj)
        locals_ = local_treaties(templates, config)
        # Site 1's local clause: -x <= -10, i.e. x >= 10.  A decrement
        # of x (T1's else branch) violates immediately.
        moved = dict(db, x=9)
        moved_lookup = lambda n: moved.get(n, 0)  # noqa: E731
        con = locals_[1][0]
        total = sum(
            coeff * moved_lookup(var.name) for var, coeff in con.expr.coeffs
        )
        assert total > con.bound  # violated

    def test_equal_split_shares_slack(self):
        """Slack n - psi(D) = 3 splits as 1 and 1 (floor)."""
        templates, getobj, db = _running_example()
        config = equal_split_configuration(templates, getobj)
        locals_ = local_treaties(templates, config)
        # Site 1 may decrement x by 1 (x >= 9), not 2.
        for delta, ok in ((1, True), (2, False)):
            moved = dict(db, x=db["x"] - delta)
            lookup = lambda n: moved.get(n, 0)  # noqa: E731
            con = locals_[1][0]
            total = sum(c * lookup(v.name) for v, c in con.expr.coeffs)
            assert (total <= con.bound) is ok

    def test_equal_split_requires_valid_db(self):
        templates, _, _ = _running_example()
        bad = {"x": 1, "y": 1}
        with pytest.raises(ValueError):
            equal_split_configuration(templates, lambda n: bad.get(n, 0))

    def test_local_treaties_conjunction_implies_global(self):
        """Exhaustive mini-check of H1 on a grid."""
        templates, getobj, _ = _running_example()
        config = equal_split_configuration(templates, getobj)
        locals_ = local_treaties(templates, config)

        def local_ok(site, db):
            lookup = lambda n: db.get(n, 0)  # noqa: E731
            return all(
                sum(c * lookup(v.name) for v, c in con.expr.coeffs) <= con.bound
                if con.op == "<="
                else sum(c * lookup(v.name) for v, c in con.expr.coeffs) == con.bound
                for con in locals_[site]
            )

        for vx in range(-5, 30, 2):
            for vy in range(-5, 30, 3):
                db = {"x": vx, "y": vy}
                if local_ok(1, db) and local_ok(2, db):
                    assert vx + vy >= 20  # the global treaty


@settings(max_examples=40, deadline=None)
@given(
    vx=st.integers(0, 60),
    vy=st.integers(0, 60),
    seed=st.integers(0, 10_000),
)
def test_random_configurations_valid(vx, vy, seed):
    """PROPERTY: both closed-form strategies produce H1+H2-valid
    configurations on any database satisfying the treaty."""
    if vx + vy < 20:
        vx += 20  # keep the running example's psi satisfiable
    templates, getobj, _ = _running_example({"x": vx, "y": vy})
    for maker in (default_configuration, equal_split_configuration):
        config = maker(templates, getobj)
        assert check_h1_algebraic(templates, config)
        assert check_h1_semantic(templates, config)
        assert check_h2(templates, config, getobj)
