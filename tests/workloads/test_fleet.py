"""The scenario fleet: flash-sale, banking, quota.

Three layers per workload:

- **Theorem 3.8 serial equivalence** on probe-free schedules (probes
  carry the weaker snapshot contract -- see ``tests/fuzz`` and
  docs/FUZZING.md -- so the strict oracle here runs the write-bearing
  mixes that must be *exactly* serial: logs and final state);
- **the workload's own invariant** on protocol final state (never
  oversold, money conserved, never over quota);
- **spec validation**: a misconfigured workload must fail loudly at
  construction with :class:`WorkloadSpecError`, not deep inside the
  kernel.

Fairness coverage for the fleet lives in ``test_fleet_fairness.py``.
"""

import random

import pytest

from repro.lang.interp import evaluate
from repro.workloads import (
    BankingWorkload,
    FlashSaleWorkload,
    GeoMicroWorkload,
    MicroWorkload,
    QuotaWorkload,
    TpccWorkload,
    WorkloadSpecError,
)


def _assert_equivalent(cluster, workload, schedule):
    state = dict(workload.initial_db)
    for req in schedule:
        result = cluster.submit(req.tx_name, req.params)
        out = evaluate(
            workload.reference_transaction(req.tx_name),
            state,
            params=req.params,
        )
        state = out.db
        assert result.log == out.log, f"log diverged on {req.tx_name}"
    final = cluster.global_state()
    for key in set(state) | set(final):
        assert state.get(key, 0) == final.get(key, 0), f"divergence on {key}"
    return state


# -- flash sale ---------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["default", "equal-split", "demand"])
def test_flashsale_serial_equivalence(strategy):
    workload = FlashSaleWorkload(
        num_skus=4, hot_stock=25, cold_stock=12, peek_fraction=0.0
    )
    cluster = workload.build_homeostasis(strategy=strategy, validate=True)
    rng = random.Random(11)
    schedule = [workload.next_request(rng) for _ in range(250)]
    state = _assert_equivalent(cluster, workload, schedule)
    # The invariant the stock treaty encodes: never oversold.
    assert all(level >= 0 for level in workload.stock_levels(state).values())


def test_flashsale_sells_out_exactly():
    """Checkout demand far past the stock drives the hot SKU to
    exactly zero: the guard refuses every further decrement."""
    workload = FlashSaleWorkload(
        num_skus=2, hot_stock=10, cold_stock=10, restock_fraction=0.0,
        peek_fraction=0.0,
    )
    cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
    sites = list(workload.sites)
    for i in range(40):
        cluster.submit(f"Checkout@s{sites[i % len(sites)]}", {"item": 0})
    levels = workload.stock_levels(cluster.global_state())
    assert levels[0] == 0
    assert levels[1] == workload.cold_stock


# -- banking ------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["equal-split", "demand"])
def test_banking_serial_equivalence(strategy):
    workload = BankingWorkload(
        num_accounts=5, num_sites=3, initial_balance=12, audit_fraction=0.0
    )
    cluster = workload.build_homeostasis(strategy=strategy, validate=True)
    rng = random.Random(5)
    schedule = [workload.next_request(rng) for _ in range(250)]
    state = _assert_equivalent(cluster, workload, schedule)
    deposited = sum(
        req.params["amount"]
        for req in schedule
        if req.tx_name.startswith("Deposit@")
    )
    assert workload.conservation_violations(state, deposited) == []


def test_banking_never_overdraws():
    """Transfers drain one account from two sites at once; the
    non-negative treaty refuses the crossing debit."""
    workload = BankingWorkload(
        num_accounts=3, num_sites=2, initial_balance=4,
        deposit_fraction=0.0, audit_fraction=0.0,
    )
    cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
    for i in range(30):
        cluster.submit(
            f"Transfer@s{i % 2}", {"src": 0, "dst": 1 + i % 2, "amount": 2}
        )
    balances = workload.balances(cluster.global_state())
    assert min(balances.values()) >= 0
    assert workload.total_money(cluster.global_state()) == 3 * 4


# -- quota --------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["equal-split", "demand"])
def test_quota_serial_equivalence(strategy):
    workload = QuotaWorkload(
        num_tenants=6, num_sites=2, limit=5, usage_fraction=0.0
    )
    cluster = workload.build_homeostasis(strategy=strategy, validate=True)
    rng = random.Random(13)
    schedule = [workload.next_request(rng) for _ in range(250)]
    state = _assert_equivalent(cluster, workload, schedule)
    assert workload.overruns(state) == []


def test_quota_tenants_are_independent():
    """Exhausting one tenant's limit must not cost another tenant a
    single admissible hit -- the treaties are per-tenant."""
    workload = QuotaWorkload(
        num_tenants=4, num_sites=2, limit=6, usage_fraction=0.0
    )
    cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
    for i in range(12):  # hammer tenant 0 past its limit (rolls over)
        cluster.submit(f"Hit@s{i % 2}", {"tenant": 0})
    for site in (0, 1):
        cluster.submit(f"Hit@s{site}", {"tenant": 1})
    levels = workload.usage_levels(cluster.global_state())
    assert workload.overruns(cluster.global_state()) == []
    assert levels[1] == 2
    assert levels[2] == levels[3] == 0


# -- spec validation across the whole workload package ------------------------


@pytest.mark.parametrize(
    "build",
    [
        lambda: FlashSaleWorkload(num_sites=1),
        lambda: FlashSaleWorkload(num_skus=0),
        lambda: FlashSaleWorkload(hot_stock=0),
        lambda: FlashSaleWorkload(cold_stock=-3),
        lambda: FlashSaleWorkload(hot_fraction=1.5),
        lambda: FlashSaleWorkload(restock_fraction=0.7, peek_fraction=0.7),
        lambda: FlashSaleWorkload(site_weights={0: 1.0, 9: 1.0}),
        lambda: BankingWorkload(num_accounts=1),
        lambda: BankingWorkload(num_sites=0),
        lambda: BankingWorkload(initial_balance=-1),
        lambda: BankingWorkload(deposit_fraction=2.0),
        lambda: QuotaWorkload(num_tenants=0),
        lambda: QuotaWorkload(limit=0),
        lambda: QuotaWorkload(usage_fraction=1.0),
        lambda: QuotaWorkload(num_sites=1),
        lambda: MicroWorkload(num_sites=1),
        lambda: MicroWorkload(num_items=0),
        lambda: MicroWorkload(items_per_txn=9, num_items=4),
        lambda: MicroWorkload(audit_fraction=-0.1),
        lambda: MicroWorkload(initial_qty="plenty"),
        lambda: GeoMicroWorkload(groups=()),
        lambda: GeoMicroWorkload(groups=((0, 0),)),
        lambda: GeoMicroWorkload(groups=((0, 1),), num_sites=1),
        lambda: TpccWorkload(num_sites=1),
        lambda: TpccWorkload(num_warehouses=0),
        lambda: TpccWorkload(hotness=150),
        lambda: TpccWorkload(mix=(0.9, 0.9, 0.1)),
    ],
    ids=[
        "flashsale-one-site",
        "flashsale-no-skus",
        "flashsale-zero-stock",
        "flashsale-negative-cold",
        "flashsale-hot-fraction",
        "flashsale-mix-overflow",
        "flashsale-weight-site",
        "banking-one-account",
        "banking-no-sites",
        "banking-negative-balance",
        "banking-deposit-fraction",
        "quota-no-tenants",
        "quota-zero-limit",
        "quota-usage-fraction",
        "quota-one-site",
        "micro-one-site",
        "micro-no-items",
        "micro-items-per-txn",
        "micro-audit-fraction",
        "micro-initial-qty",
        "geo-no-groups",
        "geo-repeated-site",
        "geo-uncovered-site",
        "tpcc-one-site",
        "tpcc-no-warehouses",
        "tpcc-hotness",
        "tpcc-mix-sum",
    ],
)
def test_bad_specs_fail_at_construction(build):
    with pytest.raises(WorkloadSpecError):
        build()
