"""Arbitration fairness under the fleet workloads.

The flash sale is the starvation regime the credit ledger (PR 9) was
built for: every site races violations of the *same* hot treaty, so
elections are frequent and a pure site-id tie-break lets one site
lose indefinitely.  These tests run the fleet's contested points
under the concurrent kernel with coarse arbitration clocks (every
in-window race ties, so the tie-break chain decides) and check the
``SimResult.fairness`` plumbing end to end: elections are actually
contested, per-site ledgers are recorded, and the budgeted credit
policy bounds the worst losing streak.
"""

import pytest

from repro.protocol.paxos_commit import NegotiationSpec
from repro.sim.experiments import run_banking, run_flashsale, run_quota

#: a clock so coarse every within-window vote ties (harness idiom)
_COARSE_CLOCK = {"clock_quantum_ms": 1e6}


def _fairness_point(runner, **kwargs):
    return runner(
        num_replicas=4,
        clients_per_replica=8,
        window_ms=10.0,
        negotiation=NegotiationSpec(policy="credit"),
        max_txns=900,
        seed=0,
        config_overrides=_COARSE_CLOCK,
        **kwargs,
    )


def test_flashsale_fairness_is_recorded_and_bounded():
    result = _fairness_point(
        run_flashsale, mode="static", hot_stock=120, restock_fraction=0.0,
        peek_fraction=0.0,
    )
    fairness = result.fairness
    assert fairness["policy"] == "credit"
    assert fairness["elections"] > 0, "hot-SKU point held no contested elections"
    assert set(fairness["per_site"]) == {0, 1, 2, 3}
    # Credit's construction bound: a loser accrues credit and must win
    # before its streak passes the ledger budget.
    assert fairness["max_consecutive_losses"] <= 3
    for site, ledger in fairness["per_site"].items():
        # ``elections`` counts contested groups only; wins also cover
        # uncontested rounds, so the per-site bound is on losses.
        assert ledger["losses"] <= fairness["elections"]
        assert ledger["max_consecutive_losses"] <= fairness[
            "max_consecutive_losses"
        ]


def test_flashsale_credit_bounds_what_priority_lets_grow():
    point = dict(
        mode="static", hot_stock=120, restock_fraction=0.0, peek_fraction=0.0,
        num_replicas=4, clients_per_replica=8, window_ms=10.0,
        max_txns=900, seed=0, config_overrides=_COARSE_CLOCK,
    )
    credit = run_flashsale(
        negotiation=NegotiationSpec(policy="credit"), **point
    ).fairness
    priority = run_flashsale(
        negotiation=NegotiationSpec(policy="priority"), **point
    ).fairness
    assert credit["elections"] > 0 and priority["elections"] > 0
    assert (
        credit["max_consecutive_losses"] <= priority["max_consecutive_losses"]
    ), (
        f"credit {credit['max_consecutive_losses']} vs priority "
        f"{priority['max_consecutive_losses']}"
    )


def test_quota_hot_tenant_fairness():
    result = _fairness_point(
        run_quota, num_tenants=10, limit=8, hot_fraction=0.9,
        usage_fraction=0.0,
    )
    fairness = result.fairness
    assert fairness["elections"] > 0, "hot-tenant point held no elections"
    assert fairness["max_consecutive_losses"] <= 3
    assert all(
        ledger["wait_p99"] >= ledger["wait_p50"]
        for ledger in fairness["per_site"].values()
    )


def test_banking_hot_account_fairness():
    result = _fairness_point(
        run_banking, num_accounts=4, initial_balance=200, hot_fraction=0.9,
        deposit_fraction=0.0, audit_fraction=0.0,
    )
    fairness = result.fairness
    assert fairness["elections"] > 0, "hot-account point held no elections"
    assert fairness["max_consecutive_losses"] <= 3


@pytest.mark.parametrize("runner", [run_flashsale, run_banking, run_quota])
def test_uncontested_points_record_empty_fairness(runner):
    """The sequential kernel (window_ms=0, no NegotiationSpec) holds
    no elections; the fairness block must say so, not lie."""
    result = runner(max_txns=150, seed=0)
    assert result.fairness["elections"] == 0
    assert result.fairness["max_consecutive_losses"] == 0
