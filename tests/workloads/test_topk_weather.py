"""Tests for the top-k (Figures 1-2) and weather (Appendix D) examples."""

import random

from repro.analysis.symbolic import build_symbolic_table
from repro.lang.interp import evaluate
from repro.workloads.topk import (
    TopKWorkload,
    aggregator_table,
    skip_guard_threshold,
)
from repro.workloads.weather import WeatherWorkload


class TestTopK:
    def test_table_has_three_cases(self):
        table = aggregator_table()
        assert len(table) == 3

    def test_skip_row_guard_is_the_threshold(self):
        """The analysis discovers the threshold-algorithm filter:
        inserts with v <= top2 are unobservable."""
        table = aggregator_table()
        guard = skip_guard_threshold(table)
        assert "top2" in guard and "@v" in guard

    def test_algorithms_agree(self):
        workload = TopKWorkload(num_item_sites=4)
        basic, improved = workload.compare(n=800, seed=3)
        assert basic.top == improved.top

    def test_improved_sends_fewer_messages(self):
        """Figure 2's point: most inserts stay local."""
        workload = TopKWorkload(num_item_sites=3)
        basic, improved = workload.compare(n=1500, seed=1)
        assert improved.messages < basic.messages / 5

    def test_message_ratio_shrinks_with_stream_length(self):
        """As the top-2 stabilizes, violations become rarer."""
        workload = TopKWorkload(num_item_sites=3)
        _, short = workload.compare(n=100, seed=2)
        _, long_ = workload.compare(n=4000, seed=2)
        assert long_.message_ratio < short.message_ratio

    def test_aggregator_semantics(self):
        table = aggregator_table()
        state = {"top1": 50, "top2": 30}
        out = evaluate(table.transaction, state, params={"v": 40})
        assert out.db["top1"] == 50 and out.db["top2"] == 40
        out = evaluate(table.transaction, state, params={"v": 60})
        assert out.db["top1"] == 60 and out.db["top2"] == 50
        out = evaluate(table.transaction, state, params={"v": 10})
        assert out.db["top1"] == 50 and out.db["top2"] == 30


class TestWeather:
    def test_record_low_table(self):
        workload = WeatherWorkload(num_days=3)
        table = build_symbolic_table(workload.record_low())
        assert len(table) == 2  # new minimum or not

    def test_top2_lows_case_structure(self):
        """Appendix D: k + 2 behavioural cases for k = 2 -- one
        'not a new min' case plus the orderings of a new min against
        the current top-2 (our row count includes the per-day
        tie-break splits of the unrolled comparison network)."""
        workload = WeatherWorkload(num_days=3)
        table = workload.top2_lows_table()
        assert len(table) >= 4  # at least k + 2
        # Every row's log is determined: prints of m1, m2.
        for row in table.rows:
            rendered = row.residual.pretty()
            assert rendered.count("print") == 2

    def test_top2_lows_soundness(self):
        workload = WeatherWorkload(num_days=3)
        tx = workload.top2_lows()
        table = workload.top2_lows_table()
        rng = random.Random(0)
        from repro.lang.ast import Transaction

        for _ in range(40):
            db = {f"daymin[{d}]": rng.randint(-20, 5) for d in range(3)}
            params = {"day": rng.randrange(3), "temp": rng.randint(-25, 10)}
            row = table.lookup(lambda n: db.get(n, 0), params=params)
            full = evaluate(tx, db, params=params)
            partial = evaluate(
                Transaction("p", tx.params, row.residual), db, params=params
            )
            assert full.db == partial.db and full.log == partial.log

    def test_top2_diffs_soundness(self):
        workload = WeatherWorkload(num_days=2)
        tx = workload.top2_diffs()
        table = workload.top2_diffs_table()
        rng = random.Random(1)
        from repro.lang.ast import Transaction

        for _ in range(30):
            db = {}
            for d in range(2):
                lo = rng.randint(-10, 5)
                db[f"daymin[{d}]"] = lo
                db[f"daymax[{d}]"] = lo + rng.randint(0, 15)
            params = {"day": rng.randrange(2), "temp": rng.randint(-12, 20)}
            row = table.lookup(lambda n: db.get(n, 0), params=params)
            full = evaluate(tx, db, params=params)
            partial = evaluate(
                Transaction("p", tx.params, row.residual), db, params=params
            )
            assert full.db == partial.db and full.log == partial.log

    def test_interesting_inserts_are_detected(self):
        """The derived rows separate 'silent' inserts (not a new min)
        from observable ones -- the treaty boundary Appendix D
        discusses."""
        workload = WeatherWorkload(num_days=2)
        table = workload.top2_lows_table()
        db = {"daymin[0]": 3, "daymin[1]": 7}
        silent = table.lookup(
            lambda n: db.get(n, 0), params={"day": 0, "temp": 5}
        )
        observable = table.lookup(
            lambda n: db.get(n, 0), params={"day": 0, "temp": -2}
        )
        assert silent is not observable
