"""Tests for the TPC-C subset workload (Section 6.2, Appendix E)."""

import random

import pytest

from repro.lang.interp import evaluate
from repro.workloads.tpcc import TpccWorkload


@pytest.fixture(scope="module")
def small_workload():
    return TpccWorkload(
        num_warehouses=1,
        num_districts=1,
        items_per_district=6,
        num_customers=5,
        num_sites=2,
        hotness=20,
        initial_stock=40,
    )


class TestEncoding:
    def test_three_families_per_site(self, small_workload):
        names = set(small_workload.variants)
        for site in (0, 1):
            for family in ("NewOrder", "Payment", "Delivery"):
                assert f"{family}@s{site}" in names

    def test_payment_is_treaty_irrelevant(self, small_workload):
        """Appendix E: Payment instances run without ever needing to
        synchronize, so they are excluded from treaty grounding."""
        tables = small_workload.ground_tables()
        assert not any(
            t.transaction.name.startswith("Payment") for t, _ in tables
        )

    def test_delivery_and_neworder_ground(self, small_workload):
        tables = small_workload.ground_tables()
        families = {t.transaction.name.split("#", 1)[0] for t, _ in tables}
        assert families == {
            "NewOrder@s0", "NewOrder@s1", "Delivery@s0", "Delivery@s1"
        }

    def test_order_counters_are_site_local(self, small_workload):
        assert small_workload.locate("next_oid_s0[0,0]") == 0
        assert small_workload.locate("next_oid_s1[0,0]") == 1

    def test_hot_item_sampling(self, small_workload):
        rng = random.Random(0)
        hot = 0
        total = 4000
        for _ in range(total):
            item = small_workload._sample_item(rng)
            if item in small_workload.hot_items:
                hot += 1
        assert abs(hot / total - small_workload.hotness / 100) < 0.03


class TestProtocolBehaviour:
    def test_payment_never_syncs(self, small_workload):
        cluster = small_workload.build_homeostasis(strategy="equal-split")
        rng = random.Random(1)
        for _ in range(60):
            params = small_workload._sample_params(rng, "Payment")
            site = rng.randrange(2)
            out = cluster.submit(f"Payment@s{site}", params)
            assert not out.synced

    def test_delivery_always_syncs(self, small_workload):
        """Appendix E: Delivery's printed output depends on remote
        state, so every *delivering* execution violates its pinned
        treaty.  A Delivery that finds the district empty prints
        nothing, reads nothing remotely in its matched residual, and
        correctly commits locally -- the analysis derives both cases."""
        cluster = small_workload.build_homeostasis(strategy="equal-split")
        rng = random.Random(2)
        delivered, empties = [], []
        for k in range(16):
            params = small_workload._sample_params(rng, "Delivery")
            out = cluster.submit(f"Delivery@s{k % 2}", params)
            (delivered if out.log else empties).append(out.synced)
        assert delivered and all(delivered), "non-empty deliveries must sync"
        if empties:
            assert not any(empties), "empty deliveries are unobservable"

    def test_neworder_syncs_only_at_boundaries(self, small_workload):
        cluster = small_workload.build_homeostasis(strategy="equal-split")
        rng = random.Random(3)
        outcomes = []
        for _ in range(120):
            params = small_workload._sample_params(rng, "NewOrder")
            site = rng.randrange(2)
            outcomes.append(cluster.submit(f"NewOrder@s{site}", params).synced)
        # Most commit locally; some boundary crossings negotiate.
        assert 0 < sum(outcomes) < 60

    def test_equivalence_to_serial(self, small_workload):
        """Theorem 3.8 over the full three-transaction mix."""
        cluster = small_workload.build_homeostasis(
            strategy="equal-split", validate=True
        )
        rng = random.Random(4)
        schedule = [small_workload.next_request(rng) for _ in range(250)]
        logs = [
            cluster.submit(req.tx_name, req.params).log for req in schedule
        ]
        state = dict(small_workload.initial_db)
        for req, log in zip(schedule, logs):
            out = evaluate(
                small_workload.reference_transaction(req.tx_name),
                state,
                params=req.params,
            )
            state = out.db
            assert out.log == log
        final = cluster.global_state()
        for key in set(state) | set(final):
            assert state.get(key, 0) == final.get(key, 0), key

    def test_hotness_increases_sync_ratio(self):
        """Figure 29's shape at kernel level: more hot-item orders,
        more treaty violations."""
        ratios = []
        for hotness in (1, 50):
            # Scale such that cold items never reach their treaty
            # boundary within the run (like the paper's 10,000-item
            # population over a finite window) while the single hot
            # item cycles repeatedly.
            workload = TpccWorkload(
                num_warehouses=1,
                num_districts=1,
                items_per_district=60,
                num_customers=5,
                num_sites=2,
                hotness=hotness,
                initial_stock=120,
                mix=(1.0, 0.0, 0.0),  # NewOrder only, isolate the effect
            )
            cluster = workload.build_homeostasis(strategy="equal-split")
            rng = random.Random(5)
            for _ in range(600):
                req = workload.next_request(rng)
                cluster.submit(req.tx_name, req.params)
            ratios.append(cluster.stats.sync_ratio)
        assert ratios[1] > ratios[0], ratios
