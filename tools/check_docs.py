"""Docs smoke: intra-repo markdown links must resolve.

Scans every tracked ``*.md`` file (repo root, ``docs/``, and any other
directory) for inline markdown links and reference-style definitions,
and fails if a relative link points at a file or directory that does
not exist.  External links (``http(s)://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped -- this is a rot detector
for the repo's own tree, not a web crawler.

Run it from the repo root (CI's ``docs`` job does)::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline links ``[text](target)`` -- non-greedy, one line, and
#: reference definitions ``[label]: target``
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

#: directories never scanned (virtualenvs, caches, generated output)
SKIP_DIRS = {".git", ".venv", "venv", "__pycache__", ".pytest_cache",
             "bench-results", ".hypothesis", "node_modules"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def link_targets(text: str):
    for match in INLINE_LINK.finditer(text):
        yield match.group(1)
    for match in REF_DEF.finditer(text):
        yield match.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    failures: list[str] = []
    text = path.read_text(encoding="utf-8")
    for target in link_targets(text):
        if target.startswith(SKIP_PREFIXES):
            continue
        # Strip an in-page anchor; checking a heading's existence is a
        # rendering concern, the file's existence is the rot signal.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            failures.append(f"{path}: link escapes the repo: {target}")
            continue
        if not resolved.exists():
            failures.append(f"{path}: broken link: {target}")
    return failures


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    scanned = 0
    failures: list[str] = []
    for path in iter_markdown(root):
        scanned += 1
        failures.extend(check_file(path, root))
    if failures:
        print(f"{len(failures)} broken link(s) in {scanned} markdown file(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"all intra-repo links resolve across {scanned} markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
