#!/usr/bin/env python3
"""Static lint for L/L++ sources, with precise source positions.

The analysis pipeline (symbolic tables, treaty generation, the
coordination-freedom classifier) assumes well-formed inputs: every
``@param`` declared, every temporary assigned before it is read on
every path, every object reference naming a declared array when the
compilation unit declares any.  Violations surface deep inside the
analysis as confusing ``AnalysisError``/``KeyError`` failures; this
linter reports them against the *source line and column* instead.

The parser's AST nodes are frozen dataclasses used as memo-cache keys
across the analysis, so they cannot carry positions themselves.  The
linter instead runs a position-recording subclass of the parser that
keeps an ``id(node) -> Token`` side table for every statement,
object reference, and atom it builds, and the semantic walks look
positions up through that table.

Checks:

- ``E001`` syntax error (the parser's own diagnosis, re-reported);
- ``E101`` temporary read before assignment on some path
  (branch-sensitive: a temp bound in only one arm of an ``if`` is
  still unbound after it);
- ``E102`` ``@name`` parameter not declared by the transaction;
- ``E103`` read/write of an array not declared by the compilation
  unit (only when the unit declares arrays at all -- bare
  transaction sources carry no declarations);
- ``E104`` ``foreach`` over an undeclared array (same scoping);
- ``E105`` duplicate transaction name in one compilation unit;
- ``W201`` assignment shadows a transaction parameter (the parser
  resolves the name as the parameter afterwards, so the assignment
  is dead).

Run it over files, or over every bundled workload source with
``--bundled`` (the CI lint job does both)::

    python tools/lint_lpp.py --bundled
    python tools/lint_lpp.py path/to/program.lpp
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path

if __package__ in (None, ""):  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lang.ast import (  # noqa: E402
    ABin,
    AConst,
    AExp,
    ANeg,
    AParam,
    ARead,
    ATemp,
    ArrayRef,
    Assign,
    BAnd,
    BCmp,
    BConst,
    BExp,
    BNot,
    BOr,
    Com,
    ForEach,
    GroundRef,
    If,
    ObjRef,
    Print,
    Program,
    Seq,
    Skip,
    Transaction,
    Write,
)
from repro.lang.lexer import Token, tokenize  # noqa: E402
from repro.lang.parser import ParseError, _Parser  # noqa: E402


@dataclass(frozen=True)
class Lint:
    """One diagnostic, anchored to a 1-based source position."""

    code: str
    message: str
    line: int
    col: int

    def render(self, source_name: str) -> str:
        return f"{source_name}:{self.line}:{self.col}: {self.code} {self.message}"


class _PositionParser(_Parser):
    """The production parser, plus an ``id(node) -> Token`` side
    table.

    AST nodes are frozen and hash-consed into memo caches elsewhere,
    so positions must live *outside* the nodes.  Identity keys are
    safe here because every node the parser constructs is a fresh
    object; the table is only read while the parse result is alive.
    """

    def __init__(self, tokens: list[Token]) -> None:
        super().__init__(tokens)
        self.positions: dict[int, Token] = {}

    def _record(self, node, tok: Token):
        self.positions.setdefault(id(node), tok)
        return node

    def statement(self) -> Com:
        tok = self.peek()
        return self._record(super().statement(), tok)

    def object_ref(self) -> ObjRef:
        tok = self.peek()
        return self._record(super().object_ref(), tok)

    def atom(self) -> "AExp | BExp":
        tok = self.peek()
        return self._record(super().atom(), tok)

    def transaction(self) -> Transaction:
        tok = self.peek()
        return self._record(super().transaction(), tok)

    def position_of(self, node) -> tuple[int, int]:
        tok = self.positions.get(id(node))
        if tok is None:
            return (1, 1)
        return (tok.line, tok.col)


class _TransactionLinter:
    """Semantic walks over one parsed transaction."""

    def __init__(
        self,
        tx: Transaction,
        parser: _PositionParser,
        arrays: frozenset[str] | None,
    ) -> None:
        self.tx = tx
        self.parser = parser
        #: declared array names, or None when the unit declares none
        #: (bare transaction sources), which disables E103/E104
        self.arrays = arrays
        self.lints: list[Lint] = []

    def run(self) -> list[Lint]:
        self._walk_com(self.tx.body, set(self.tx.params), set())
        return self.lints

    def _emit(self, code: str, message: str, node) -> None:
        line, col = self.parser.position_of(node)
        self.lints.append(Lint(code, message, line, col))

    # -- command walk (branch-sensitive bound-temp tracking) ------------------

    def _walk_com(
        self, com: Com, params: set[str], bound: set[str]
    ) -> set[str]:
        """Lint one command; returns the temps bound *after* it."""
        if isinstance(com, (Skip,)):
            return bound
        if isinstance(com, Seq):
            for part in (com.first, com.second):
                bound = self._walk_com(part, params, bound)
            return bound
        if isinstance(com, Assign):
            self._walk_aexp(com.expr, params, bound)
            if com.temp in params:
                self._emit(
                    "W201",
                    f"assignment shadows parameter '{com.temp}' "
                    f"(reads still resolve to the parameter)",
                    com,
                )
                return bound
            return bound | {com.temp}
        if isinstance(com, Write):
            self._walk_ref(com.ref, params, bound, node=com)
            self._walk_aexp(com.expr, params, bound)
            return bound
        if isinstance(com, Print):
            self._walk_aexp(com.expr, params, bound)
            return bound
        if isinstance(com, If):
            self._walk_bexp(com.cond, params, bound)
            after_then = self._walk_com(com.then_branch, params, set(bound))
            after_else = self._walk_com(com.else_branch, params, set(bound))
            # A temp bound in only one arm is unbound after the join.
            return after_then & after_else
        if isinstance(com, ForEach):
            if self.arrays is not None and com.array not in self.arrays:
                self._emit(
                    "E104",
                    f"foreach over undeclared array '{com.array}'",
                    com,
                )
            # The loop variable is bound inside the body; zero
            # iterations leave it unbound afterwards.
            self._walk_com(com.body, params, bound | {com.var})
            return bound
        raise AssertionError(f"unhandled command {type(com).__name__}")

    # -- expression walks -------------------------------------------------------

    def _walk_ref(
        self, ref: ObjRef, params: set[str], bound: set[str], node=None
    ) -> None:
        anchor = ref if id(ref) in self.parser.positions else node
        if isinstance(ref, ArrayRef):
            if self.arrays is not None and ref.base not in self.arrays:
                self._emit(
                    "E103",
                    f"reference to undeclared array '{ref.base}'",
                    anchor,
                )
            for index in ref.index:
                self._walk_aexp(index, params, bound)
        elif isinstance(ref, GroundRef):
            base = ref.name.split("[", 1)[0]
            if self.arrays is not None and base not in self.arrays:
                self._emit(
                    "E103",
                    f"reference to undeclared object '{ref.name}'",
                    anchor,
                )

    def _walk_aexp(self, expr: AExp, params: set[str], bound: set[str]) -> None:
        if isinstance(expr, AConst):
            return
        if isinstance(expr, AParam):
            if expr.name not in params:
                self._emit(
                    "E102",
                    f"parameter '@{expr.name}' is not declared by "
                    f"transaction '{self.tx.name}'",
                    expr,
                )
            return
        if isinstance(expr, ATemp):
            if expr.name not in bound:
                self._emit(
                    "E101",
                    f"temporary '{expr.name}' may be read before "
                    f"assignment",
                    expr,
                )
            return
        if isinstance(expr, ARead):
            self._walk_ref(expr.ref, params, bound, node=expr)
            return
        if isinstance(expr, ABin):
            self._walk_aexp(expr.left, params, bound)
            self._walk_aexp(expr.right, params, bound)
            return
        if isinstance(expr, ANeg):
            self._walk_aexp(expr.operand, params, bound)
            return
        raise AssertionError(f"unhandled arithmetic {type(expr).__name__}")

    def _walk_bexp(self, expr: BExp, params: set[str], bound: set[str]) -> None:
        if isinstance(expr, BConst):
            return
        if isinstance(expr, BCmp):
            self._walk_aexp(expr.left, params, bound)
            self._walk_aexp(expr.right, params, bound)
            return
        if isinstance(expr, (BAnd, BOr)):
            self._walk_bexp(expr.left, params, bound)
            self._walk_bexp(expr.right, params, bound)
            return
        if isinstance(expr, BNot):
            self._walk_bexp(expr.operand, params, bound)
            return
        raise AssertionError(f"unhandled boolean {type(expr).__name__}")


def lint_source(source: str) -> list[Lint]:
    """Lint one L/L++ compilation unit (program or bare transaction).

    Syntax errors short-circuit into a single ``E001`` -- there is no
    AST to walk past them."""
    tokens = tokenize(source)
    parser = _PositionParser(tokens)
    try:
        if parser.check("keyword", "transaction") or parser.check(
            "keyword", "array"
        ) or parser.check("keyword", "relation"):
            program = parser.program()
        else:
            body = (
                parser.block()
                if parser.check("op", "{")
                else parser.command_sequence()
            )
            parser.expect("eof")
            program = Program()
            program.add(Transaction("T", (), body))
    except ParseError as exc:
        tok = exc.token
        message = str(exc).split(" at line ", 1)[0]
        return [Lint("E001", message, tok.line, tok.col)]
    except ValueError as exc:
        # Program.add rejects duplicate transaction names itself; the
        # parser's cursor sits just past the offending declaration.
        tok = parser.peek()
        return [Lint("E105", str(exc), tok.line, tok.col)]

    lints: list[Lint] = []
    arrays = frozenset(program.arrays) if program.arrays else None
    for tx in program.transactions.values():
        lints.extend(_TransactionLinter(tx, parser, arrays).run())
    lints.sort(key=lambda item: (item.line, item.col, item.code))
    return lints


def bundled_sources() -> dict[str, str]:
    """Every L/L++ source string shipped with the bundled workloads,
    instantiated at representative parameters."""
    from repro.workloads.geo import group_buy_source
    from repro.workloads.micro import audit_source, buy_source, multibuy_source
    from repro.workloads.topk import AGG_INSERT_SRC
    from repro.workloads.tpcc import DELIVERY_SRC, NEW_ORDER_SRC, PAYMENT_SRC
    from repro.workloads.weather import (
        record_low_source,
        record_range_source,
        top2_of_differences_source,
        top2_of_minimums_source,
    )

    return {
        "micro:Buy": buy_source(refill=100),
        "micro:Audit": audit_source(),
        "micro:MultiBuy": multibuy_source(refill=100, m=3),
        "tpcc:NewOrder": NEW_ORDER_SRC,
        "tpcc:Payment": PAYMENT_SRC,
        "tpcc:Delivery": DELIVERY_SRC,
        "geo:GroupBuy": group_buy_source(gid=0, base="stock_g0", refill=100),
        "topk:AggInsert": AGG_INSERT_SRC,
        "weather:RecordLow": record_low_source(num_days=3),
        "weather:RecordObs": record_range_source(num_days=3),
        "weather:Top2Lows": top2_of_minimums_source(num_days=3),
        "weather:Top2Diffs": top2_of_differences_source(num_days=3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "files", nargs="*", type=Path, help="L/L++ source files to lint"
    )
    parser.add_argument(
        "--bundled",
        action="store_true",
        help="lint every bundled workload source",
    )
    args = parser.parse_args(argv)
    if not args.files and not args.bundled:
        parser.error("nothing to lint: pass files and/or --bundled")

    units: list[tuple[str, str]] = []
    if args.bundled:
        units.extend(sorted(bundled_sources().items()))
    for path in args.files:
        units.append((str(path), path.read_text()))

    failures = 0
    for name, source in units:
        lints = lint_source(source)
        for item in lints:
            print(item.render(name))
        failures += len(lints)
    total = len(units)
    if failures:
        print(f"{failures} problem(s) across {total} source(s)", file=sys.stderr)
        return 1
    print(f"{total} source(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
