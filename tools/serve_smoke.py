"""Serve smoke: boot ``repro-serve``, hammer it, demand a clean exit.

CI's ``serve-smoke`` job runs this end-to-end check of the asyncio
runtime's outermost surface: a real ``repro-serve`` subprocess on an
ephemeral loopback port, 4 concurrent client connections submitting
200 transactions total over the wire protocol, then a ``shutdown``
request.  It asserts:

- every submitted transaction commits (fault-free loopback run on a
  contended stock workload);
- the run negotiated -- sync ratio strictly inside ``(0, 0.9)`` and
  real inter-site frames on the async transport (a schedule that
  never violates treaties would smoke-test the wrong code path);
- the server exits 0 on ``shutdown`` within the grace period and
  prints nothing to stderr.

Run it from the repo root (no install needed)::

    python tools/serve_smoke.py
"""

from __future__ import annotations

import re
import subprocess
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.runtime.client import ServeClient  # noqa: E402

CONNECTIONS = 4
TXNS_TOTAL = 200
SYNC_RATIO_MAX = 0.9
ITEMS, REFILL = 12, 9  # scarce stock: violations within a short run


def start_server() -> tuple[subprocess.Popen, str, int]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.runtime.serve",
            "--port", "0", "--workload", "micro",
            "--strategy", "equal-split",
            "--items", str(ITEMS), "--refill", str(REFILL),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": str(REPO / "src")},
    )
    assert proc.stdout is not None
    banner = proc.stdout.readline()
    match = re.match(r"repro-serve listening on (\S+):(\d+)", banner)
    if not match:
        proc.kill()
        raise SystemExit(f"FAIL: repro-serve did not come up: {banner!r}")
    return proc, match.group(1), int(match.group(2))


def main() -> int:
    proc, host, port = start_server()
    per_conn = TXNS_TOTAL // CONNECTIONS
    statuses: list[str] = []
    lock = threading.Lock()
    errors: list[BaseException] = []

    def worker(n: int) -> None:
        try:
            with ServeClient(host, port) as client:
                assert client.ping()
                for i in range(per_conn):
                    result = client.submit(
                        f"Buy@s{(n + i) % 2}", {"item": (n * 7 + i) % ITEMS}
                    )
                    with lock:
                        statuses.append(result["status"])
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(n,)) for n in range(CONNECTIONS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    failures: list[str] = []
    if errors:
        failures.append(f"client thread raised: {errors[0]!r}")

    stats: dict = {}
    try:
        with ServeClient(host, port) as client:
            stats = client.stats()
            client.shutdown()
    except BaseException as exc:
        failures.append(f"stats/shutdown request failed: {exc!r}")

    try:
        code = proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        failures.append("server did not exit within 30s of shutdown")
        code = proc.wait()
    stderr = proc.stderr.read() if proc.stderr else ""

    committed = sum(1 for s in statuses if s == "committed")
    if committed != TXNS_TOTAL:
        failures.append(
            f"only {committed}/{TXNS_TOTAL} transactions committed "
            f"({len(statuses)} completed)"
        )
    sync_ratio = stats.get("sync_ratio", -1.0)
    if not 0.0 < sync_ratio < SYNC_RATIO_MAX:
        failures.append(
            f"sync ratio {sync_ratio} outside (0, {SYNC_RATIO_MAX}): the "
            f"smoke run must negotiate, but not on every transaction"
        )
    frames = stats.get("wire", {}).get("frames_sent", 0)
    if frames <= 0:
        failures.append("no inter-site frames crossed the async transport")
    if code != 0:
        failures.append(f"server exited {code}, expected 0")
    if stderr.strip():
        failures.append(f"server wrote to stderr: {stderr.strip()[:400]}")

    if failures:
        print("serve smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"serve smoke ok: {committed}/{TXNS_TOTAL} committed over "
        f"{CONNECTIONS} connections, {stats['negotiations']} negotiations "
        f"(sync ratio {sync_ratio:.4f}), {frames} wire frames, "
        f"clean shutdown (exit 0)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
